"""Greedy join-ordering fallback for large join graphs.

The exact DPccp walk of :class:`~repro.core.enumerator.JoinEnumerator` emits
Θ(3^n) (csg, cmp) pairs on clique-shaped queries, so past roughly a dozen
relations the enumeration — not execution — dominates end-to-end latency.
Production optimizers bound the walk with a pair budget and fall back to a
greedy ordering; this module supplies that ordering:

* **GOO** (Greedy Operator Ordering, Fegaras 1998): repeatedly merge the two
  connected relation groups whose join has the smallest estimated
  cardinality.  Works on any graph shape and is the general fallback.
* **IKKBZ-style linearization** (Ibaraki/Kameda, Krishnamurthy/Boral/Zaniolo):
  for *acyclic* join graphs the precedence-tree rank ordering produces an
  optimal left-deep order under ASI cost functions, so tree-shaped components
  (chains, stars, snowflakes) get the classic linearization instead of GOO.

The output is deliberately *not* a plan: it is the same
``{union mask: [(left mask, right mask)]}`` structure the exact walk produces,
one unordered split per union, so the enumerator's canonical ordering,
``combine``/``_physical_variants`` costing and the Bloom-constraint checks of
both BF-CBO phases run unchanged over the greedy join tree.  Disconnected
components are ordered independently and stitched with the same FROM-order
cross products as the exact path, so multi-component queries stay plannable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .cardinality import CardinalityEstimator
from .joingraph import JoinGraph
from .query import JoinClause, JoinType

#: Floor for selectivities/costs so rank computations never divide by zero.
_EPSILON = 1e-12

#: Beyond this many relations in one acyclic component, IKKBZ tries only the
#: smallest-cardinality relations as precedence-tree roots instead of all of
#: them — the all-roots sweep is O(n^2) estimator calls, which at hundreds of
#: relations costs more than the orders differ.
_MAX_IKKBZ_ROOTS = 16


def _merge_is_legal(graph: JoinGraph, left: int, right: int) -> bool:
    """True if joining ``left`` and ``right`` is legal in some orientation.

    Mirrors :meth:`JoinEnumerator._join_type_for`: outer/semi/anti clauses pin
    their row-preserving side to the probe side, and conflicting non-inner
    types between the same two sets are unplannable in either orientation.
    GOO must not pick such a merge — the enumerator would reject both
    orientations downstream and leave the union without a plan even though a
    different merge order (which the exact DP finds) is perfectly plannable.
    """
    clauses = [clause for clause, (left_bit, right_bit)
               in zip(graph.query.join_clauses, graph.clause_bits)
               if (left_bit & left and right_bit & right)
               or (left_bit & right and right_bit & left)]
    if not clauses:
        return True  # cross product: always joinable
    return (_orientation_is_legal(graph, clauses, left)
            or _orientation_is_legal(graph, clauses, right))


def _orientation_is_legal(graph: JoinGraph, clauses: Sequence[JoinClause],
                          outer: int) -> bool:
    join_type = JoinType.INNER
    for clause in clauses:
        if clause.join_type is JoinType.INNER:
            continue
        if join_type is not JoinType.INNER \
                and clause.join_type is not join_type:
            return False
        join_type = clause.join_type
        if clause.join_type is JoinType.FULL:
            continue
        preserved_bit = 1 << graph.bit_of[clause.left.relation]
        if not preserved_bit & outer:
            return False
    return True


def greedy_unordered_pairs(graph: JoinGraph,
                           estimator: CardinalityEstimator,
                           ) -> Dict[int, List[Tuple[int, int]]]:
    """One unordered (left, right) split per union mask of a greedy join tree.

    Each connected component is ordered independently — IKKBZ linearization
    when the component is acyclic, GOO otherwise — and the per-component
    results are stitched with FROM-order cross products exactly like
    :meth:`JoinEnumerator._stitch_steps`, so the enumerator's downstream
    machinery (both orientations, canonical sort, cross-product accounting)
    treats the greedy tree like any other pair source.
    """
    pairs: Dict[int, List[Tuple[int, int]]] = {}
    component_roots: List[int] = []
    for component in graph.component_masks():
        if _is_tree(graph, component) and _all_inner(graph, component):
            merges = _ikkbz_merges(graph, estimator, component)
        else:
            merges = _goo_merges(graph, estimator, component)
        for left, right in merges:
            pairs.setdefault(left | right, []).append((left, right))
        component_roots.append(component)
    accumulated = component_roots[0] if component_roots else 0
    for component in component_roots[1:]:
        pairs.setdefault(accumulated | component, []).append(
            (accumulated, component))
        accumulated |= component
    return pairs


def _is_tree(graph: JoinGraph, component: int) -> bool:
    """True if the component's induced join graph is acyclic.

    A connected graph is a tree iff it has exactly ``vertices - 1`` edges;
    multi-clause edges between the same relation pair count once (they do not
    create a cycle in the precedence structure IKKBZ relies on).
    """
    bits = list(JoinGraph._bit_indices(component))
    edges = set()
    for bit in bits:
        for other in JoinGraph._bit_indices(graph.neighbor_masks[bit]):
            if (1 << other) & component and other > bit:
                edges.add((bit, other))
    return len(edges) == len(bits) - 1


def _all_inner(graph: JoinGraph, component: int) -> bool:
    """True when every clause inside the component is a plain inner join.

    IKKBZ's rank ordering assumes freely reorderable joins; components with
    outer/semi/anti clauses go through GOO, whose merge selection checks
    orientation legality per step.
    """
    for clause, (left_bit, right_bit) in zip(graph.query.join_clauses,
                                             graph.clause_bits):
        if (left_bit | right_bit) & component \
                and clause.join_type is not JoinType.INNER:
            return False
    return True


# ----------------------------------------------------------------------
# GOO: greedy operator ordering over one connected component
# ----------------------------------------------------------------------

def _goo_merges(graph: JoinGraph, estimator: CardinalityEstimator,
                component: int) -> List[Tuple[int, int]]:
    """Merge steps of GOO: join the legal pair with the smallest result.

    Candidate merges whose clauses are orientation-illegal in both directions
    (see :func:`_merge_is_legal`) are deferred behind every legal one, so
    outer-join patterns the exact DP can plan stay plannable under the
    fallback.  Ties are broken by the (lower, higher) union mask so the
    ordering is a pure function of the statistics, never of iteration order.
    """
    groups = [1 << bit for bit in JoinGraph._bit_indices(component)]
    merges: List[Tuple[int, int]] = []
    while len(groups) > 1:
        best: Optional[Tuple[float, int, int, int]] = None
        fallback: Optional[Tuple[float, int, int, int]] = None
        for i, left in enumerate(groups):
            left_neighbors = graph.neighbor_mask(left)
            for right in groups[i + 1:]:
                if not left_neighbors & right:
                    continue
                union = left | right
                rows = estimator.join_rows(graph.aliases_of(union))
                key = (rows, union, left, right)
                if _merge_is_legal(graph, left, right):
                    if best is None or key < best:
                        best = key
                elif fallback is None or key < fallback:
                    fallback = key
        if best is None:
            # Every connected merge is orientation-illegal right now (an
            # unusual outer-join corner); take the cheapest anyway rather
            # than stall — the DP rejects it downstream exactly as it would
            # have without the legality filter.
            best = fallback
        if best is None:  # unreachable for a connected component
            break
        _, union, left, right = best
        merges.append((left, right))
        groups = [g for g in groups if g not in (left, right)]
        groups.append(union)
    return merges


# ----------------------------------------------------------------------
# IKKBZ: rank-based linearization of an acyclic component
# ----------------------------------------------------------------------

@dataclass
class _Segment:
    """A run of already-ordered relations treated as one chain element.

    ``t`` is the product of the members' rank terms (selectivity × rows) and
    ``c`` the ASI cost of the run, composed with C(S1 S2) = C(S1) + T(S1)C(S2);
    normalization merges adjacent segments whose ranks are out of order.
    """

    bits: List[int]
    t: float
    c: float

    @property
    def rank(self) -> float:
        return (self.t - 1.0) / max(self.c, _EPSILON)

    def absorb(self, other: "_Segment") -> None:
        self.c = self.c + self.t * other.c
        self.t = self.t * other.t
        self.bits.extend(other.bits)


def _ikkbz_merges(graph: JoinGraph, estimator: CardinalityEstimator,
                  component: int) -> List[Tuple[int, int]]:
    """Left-deep merge steps of the best IKKBZ linearization.

    Every relation of the component is tried as the precedence-tree root; each
    root's rank-ordered linearization is costed with the engine's own
    cardinality estimator (the sum of intermediate join sizes, i.e. the
    C_out ASI cost), and the cheapest order wins.  Ties fall to the lowest
    root bit, keeping the result deterministic.
    """
    bits = list(JoinGraph._bit_indices(component))
    if len(bits) == 1:
        return []
    roots = bits
    if len(bits) > _MAX_IKKBZ_ROOTS:
        roots = sorted(bits, key=lambda bit: (
            estimator.scan_rows(graph.aliases[bit]), bit))[:_MAX_IKKBZ_ROOTS]
    best_order: List[int] = bits
    best_cost = float("inf")
    for root in roots:
        order = _linearize_from_root(graph, estimator, component, root)
        cost = _left_deep_cost(graph, estimator, order)
        if cost < best_cost:
            best_cost = cost
            best_order = order
    merges: List[Tuple[int, int]] = []
    prefix = 1 << best_order[0]
    for bit in best_order[1:]:
        merges.append((prefix, 1 << bit))
        prefix |= 1 << bit
    return merges


def _linearize_from_root(graph: JoinGraph, estimator: CardinalityEstimator,
                         component: int, root: int) -> List[int]:
    """IKKBZ chain for one root: merge child chains by rank, normalizing."""
    children: Dict[int, List[int]] = {root: []}
    parent: Dict[int, int] = {}
    frontier = [root]
    seen = 1 << root
    while frontier:
        node = frontier.pop(0)
        for other in JoinGraph._bit_indices(graph.neighbor_masks[node]):
            if not (1 << other) & component or (1 << other) & seen:
                continue
            seen |= 1 << other
            parent[other] = node
            children.setdefault(node, []).append(other)
            children.setdefault(other, [])
            frontier.append(other)

    # Iterative post-order: the fallback exists precisely for huge graphs,
    # where a recursive traversal would blow the interpreter's stack on a
    # deep precedence tree (e.g. a 1200-relation chain).
    chains: Dict[int, List[_Segment]] = {}
    stack: List[Tuple[int, bool]] = [(root, False)]
    while stack:
        node, ready = stack.pop()
        if not ready:
            stack.append((node, True))
            for child in children[node]:
                stack.append((child, False))
            continue
        # Merge the (already normalized) child chains by ascending rank,
        # then pull the node's own segment to the front and re-normalize.
        # The merge MUST preserve each chain's internal order — a flat
        # re-sort would let a segment jump ahead of its precedence-tree
        # ancestor on rank ties, turning a connected left-deep prefix into
        # a cross product.
        merged = _merge_chains([chains.pop(child)
                                for child in children[node]])
        if node == root:
            chains[node] = merged
            continue
        rows = estimator.scan_rows(graph.aliases[node])
        selectivity = _edge_selectivity(graph, estimator, node, parent[node])
        t = max(selectivity * rows, _EPSILON)
        normalized: List[_Segment] = [_Segment(bits=[node], t=t, c=t)]
        for segment in merged:
            normalized.append(segment)
            while (len(normalized) > 1
                   and normalized[-2].rank > normalized[-1].rank):
                tail = normalized.pop()
                normalized[-1].absorb(tail)
        chains[node] = normalized

    order = [root]
    for segment in chains[root]:
        order.extend(segment.bits)
    return order


def _merge_chains(chains: List[List[_Segment]]) -> List[_Segment]:
    """Stable k-way merge of rank-sorted chains.

    Within one chain relative order is preserved (that order encodes the
    precedence-tree parent-before-child constraint); rank ties across chains
    resolve to the earliest chain, i.e. the children's deterministic BFS
    discovery order.
    """
    merged: List[_Segment] = []
    positions = [0] * len(chains)
    while True:
        best = -1
        for index, chain in enumerate(chains):
            if positions[index] >= len(chain):
                continue
            if best < 0 or chain[positions[index]].rank \
                    < chains[best][positions[best]].rank:
                best = index
        if best < 0:
            return merged
        merged.append(chains[best][positions[best]])
        positions[best] += 1


def _edge_selectivity(graph: JoinGraph, estimator: CardinalityEstimator,
                      node: int, parent: int) -> float:
    """Selectivity of the join edge between a node and its tree parent."""
    node_alias = graph.aliases[node]
    parent_alias = graph.aliases[parent]
    joined = estimator.join_rows(frozenset((node_alias, parent_alias)))
    denominator = max(estimator.scan_rows(node_alias)
                      * estimator.scan_rows(parent_alias), _EPSILON)
    return min(1.0, max(joined / denominator, _EPSILON))


def _left_deep_cost(graph: JoinGraph, estimator: CardinalityEstimator,
                    order: List[int]) -> float:
    """C_out of a left-deep order: the sum of intermediate result sizes."""
    cost = 0.0
    prefix = 1 << order[0]
    for bit in order[1:]:
        prefix |= 1 << bit
        cost += estimator.join_rows(graph.aliases_of(prefix))
    return cost
