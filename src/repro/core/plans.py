"""Physical plan nodes.

A plan node carries its children, the estimated output cardinality, the
accumulated :class:`~repro.core.cost.Cost` and a :class:`PlanProperties`
instance (distribution + pending Bloom filters).  Nodes are deliberately plain
data: the enumerator constructs and costs them, the executor interprets them,
and :mod:`repro.core.explain` renders them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, Iterator, List, Optional, Sequence, Tuple

from .candidates import BloomFilterSpec
from .cost import Cost, ZERO_COST
from .expressions import ColumnRef, Predicate, ScalarExpression
from .properties import Distribution, PlanProperties, RANDOM_DISTRIBUTION
from .query import JoinClause, JoinType, OrderItem, OutputItem


class JoinMethod(enum.Enum):
    """Physical join algorithms considered by the optimizer."""

    HASH = "hash join"
    NESTED_LOOP = "nested loop"
    MERGE = "merge join"


class ExchangeKind(enum.Enum):
    """Streaming operators used in the simulated SMP deployment."""

    BROADCAST = "broadcast"
    REDISTRIBUTE = "redistribute"
    GATHER = "gather"


@dataclass
class PlanNode:
    """Base class for all physical plan nodes."""

    rows: float = 0.0
    cost: Cost = ZERO_COST
    properties: PlanProperties = field(default_factory=PlanProperties)
    row_width: int = 32

    @property
    def children(self) -> List["PlanNode"]:
        """Child plan nodes, outer/probe side first."""
        return []

    @property
    def relations(self) -> FrozenSet[str]:
        """Relation aliases covered by this sub-plan.

        Memoized per node: the enumerator asks for this on every δ-constraint
        check and plan trees are immutable once constructed.
        """
        cached = self.__dict__.get("_relations")
        if cached is None:
            result: FrozenSet[str] = frozenset()
            for child in self.children:
                result |= child.relations
            self.__dict__["_relations"] = cached = result
        return cached

    @property
    def pending_blooms(self) -> FrozenSet[BloomFilterSpec]:
        """Unresolved Bloom filter specs carried by this sub-plan."""
        return self.properties.pending_blooms

    def label(self) -> str:
        """Short human-readable operator label (used by EXPLAIN)."""
        return type(self).__name__

    def walk(self) -> Iterator["PlanNode"]:
        """Yield this node and all descendants, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()


@dataclass
class ScanNode(PlanNode):
    """A (possibly Bloom filtered) scan over one base relation."""

    alias: str = ""
    table_name: str = ""
    predicates: Tuple[Predicate, ...] = ()
    bloom_filters: Tuple[BloomFilterSpec, ...] = ()
    #: Row count before any Bloom filters are applied (after local predicates);
    #: the cost model charges Bloom probes against this count.
    pre_bloom_rows: float = 0.0

    @property
    def children(self) -> List[PlanNode]:
        return []

    @property
    def relations(self) -> FrozenSet[str]:
        cached = self.__dict__.get("_relations")
        if cached is None:
            self.__dict__["_relations"] = cached = frozenset({self.alias})
        return cached

    @property
    def is_bloom_scan(self) -> bool:
        """True if at least one Bloom filter is applied during this scan."""
        return bool(self.bloom_filters)

    def label(self) -> str:
        base = "Scan %s" % self.alias
        if self.table_name and self.table_name != self.alias:
            base = "Scan %s [%s]" % (self.alias, self.table_name)
        if self.bloom_filters:
            filters = ", ".join("BF(%s)<-{%s}" % (spec.build_column,
                                                  ",".join(sorted(spec.delta)))
                                for spec in self.bloom_filters)
            base += " applying " + filters
        return base


@dataclass
class JoinNode(PlanNode):
    """A binary join; ``outer`` is the probe side, ``inner`` the build side."""

    method: JoinMethod = JoinMethod.HASH
    join_type: JoinType = JoinType.INNER
    outer: Optional[PlanNode] = None
    inner: Optional[PlanNode] = None
    clauses: Tuple[JoinClause, ...] = ()
    #: Bloom filters whose build side is provided by this join's inner input.
    #: The executor builds these filters while building the hash table.
    built_filters: Tuple[BloomFilterSpec, ...] = ()
    #: Residual (non equi-join) predicates applied to the join output.
    residual_predicates: Tuple[Predicate, ...] = ()

    @property
    def children(self) -> List[PlanNode]:
        return [node for node in (self.outer, self.inner) if node is not None]

    def label(self) -> str:
        parts = [self.method.value.title()]
        if self.join_type is not JoinType.INNER:
            parts.append("(%s)" % self.join_type.value)
        if self.clauses:
            parts.append("on " + " and ".join(str(c) for c in self.clauses))
        if self.built_filters:
            parts.append("building " + ", ".join(spec.filter_id
                                                 for spec in self.built_filters))
        return " ".join(parts)


@dataclass
class ExchangeNode(PlanNode):
    """Broadcast / redistribute / gather of a child's output."""

    kind: ExchangeKind = ExchangeKind.REDISTRIBUTE
    child: Optional[PlanNode] = None
    hash_keys: Tuple[ColumnRef, ...] = ()

    @property
    def children(self) -> List[PlanNode]:
        return [self.child] if self.child is not None else []

    def label(self) -> str:
        if self.kind is ExchangeKind.REDISTRIBUTE and self.hash_keys:
            return "Redistribute on (%s)" % ", ".join(str(k) for k in self.hash_keys)
        return self.kind.value.title()


@dataclass
class AggregateNode(PlanNode):
    """Hash aggregation over group-by keys."""

    child: Optional[PlanNode] = None
    group_by: Tuple[ScalarExpression, ...] = ()
    aggregates: Tuple[OutputItem, ...] = ()

    @property
    def children(self) -> List[PlanNode]:
        return [self.child] if self.child is not None else []

    def label(self) -> str:
        return "Aggregate (%d keys, %d aggs)" % (len(self.group_by),
                                                 len(self.aggregates))


@dataclass
class SortNode(PlanNode):
    """Sort of a child's output.

    ``drop_keys`` names hidden sort-key columns the projection (or
    aggregation) below carried through solely for this sort — ORDER BY on a
    non-projected column — which the executor removes from the batch once
    the rows are ordered.
    """

    child: Optional[PlanNode] = None
    order_by: Tuple[OrderItem, ...] = ()
    drop_keys: Tuple[str, ...] = ()

    @property
    def children(self) -> List[PlanNode]:
        return [self.child] if self.child is not None else []

    def label(self) -> str:
        return "Sort"


@dataclass
class LimitNode(PlanNode):
    """LIMIT n."""

    child: Optional[PlanNode] = None
    limit: int = 0

    @property
    def children(self) -> List[PlanNode]:
        return [self.child] if self.child is not None else []

    def label(self) -> str:
        return "Limit %d" % self.limit


@dataclass
class ProjectNode(PlanNode):
    """Final projection computing the SELECT-list expressions."""

    child: Optional[PlanNode] = None
    items: Tuple[OutputItem, ...] = ()

    @property
    def children(self) -> List[PlanNode]:
        return [self.child] if self.child is not None else []

    def label(self) -> str:
        return "Project (%d items)" % len(self.items)


def count_bloom_filters(plan: PlanNode) -> int:
    """Number of Bloom filters applied anywhere in the plan."""
    return sum(len(node.bloom_filters) for node in plan.walk()
               if isinstance(node, ScanNode))


def scan_nodes(plan: PlanNode) -> List[ScanNode]:
    """All scan nodes in the plan, pre-order."""
    return [node for node in plan.walk() if isinstance(node, ScanNode)]


def join_nodes(plan: PlanNode) -> List[JoinNode]:
    """All join nodes in the plan, pre-order."""
    return [node for node in plan.walk() if isinstance(node, JoinNode)]
