"""Physical plan properties.

Sub-plans in a bottom-up optimizer are retained per *property set*: a more
expensive sub-plan survives pruning if it has a property a cheaper one lacks
(the classic example being sort order / interesting orders).  This reproduction
tracks two properties:

* **distribution** — how the sub-plan's output is spread across the simulated
  SMP workers (random, hash-partitioned on columns, broadcast, or singleton);
  it determines whether a join needs broadcast or redistribution exchanges.
* **pending Bloom filters** — the paper's new property: the set of Bloom
  filter specifications attached to scans below this sub-plan that have not yet
  been resolved by a hash join providing their δ build relations
  (Sections 3.5–3.6).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple

from .expressions import ColumnRef


class DistributionKind(enum.Enum):
    """How a sub-plan's rows are distributed over the SMP workers."""

    RANDOM = "random"        # round-robin / storage-defined, no useful key
    HASH = "hash"            # hash partitioned on specific columns
    BROADCAST = "broadcast"  # fully replicated on every worker
    SINGLETON = "singleton"  # all rows on a single worker


@dataclass(frozen=True)
class Distribution:
    """A distribution property: kind plus (for hash) the partitioning columns."""

    kind: DistributionKind
    keys: Tuple[ColumnRef, ...] = ()

    def __post_init__(self) -> None:
        if self.kind is DistributionKind.HASH and not self.keys:
            raise ValueError("hash distribution requires partitioning keys")
        if self.kind is not DistributionKind.HASH and self.keys:
            raise ValueError("only hash distribution carries keys")

    @classmethod
    def random(cls) -> "Distribution":
        return cls(DistributionKind.RANDOM)

    @classmethod
    def hashed(cls, keys: Tuple[ColumnRef, ...]) -> "Distribution":
        return cls(DistributionKind.HASH, tuple(keys))

    @classmethod
    def broadcast(cls) -> "Distribution":
        return cls(DistributionKind.BROADCAST)

    @classmethod
    def singleton(cls) -> "Distribution":
        return cls(DistributionKind.SINGLETON)

    def is_hashed_on(self, columns: Tuple[ColumnRef, ...]) -> bool:
        """True if already hash partitioned on exactly these columns."""
        return self.kind is DistributionKind.HASH and set(self.keys) == set(columns)

    def signature(self) -> Tuple:
        """Hashable signature used in plan-list keys.

        Memoized on the (frozen, immutable) instance: dominance checks in
        :class:`~repro.core.planlist.PlanList` call this for every plan pair.
        """
        try:
            return self._signature  # type: ignore[attr-defined]
        except AttributeError:
            signature = (self.kind.value,
                         tuple(sorted(str(k) for k in self.keys)))
            object.__setattr__(self, "_signature", signature)
            return signature

    def __str__(self) -> str:
        if self.kind is DistributionKind.HASH:
            return "hash(%s)" % ", ".join(str(k) for k in self.keys)
        return self.kind.value


RANDOM_DISTRIBUTION = Distribution.random()


@dataclass(frozen=True)
class PlanProperties:
    """The full property set attached to each sub-plan.

    Attributes:
        distribution: Physical data distribution of the sub-plan's output.
        pending_blooms: Frozen set of Bloom filter ids (see
            :class:`repro.core.candidates.BloomFilterSpec`) that are applied by
            scans inside this sub-plan but whose build-side δ relations have
            not all appeared on the inner side of a hash join yet.
    """

    distribution: Distribution = RANDOM_DISTRIBUTION
    pending_blooms: FrozenSet = frozenset()

    def signature(self) -> Tuple:
        """Hashable plan-list key (memoized; the instance is immutable)."""
        try:
            return self._signature  # type: ignore[attr-defined]
        except AttributeError:
            signature = (self.distribution.signature(),
                         tuple(sorted(spec.filter_id
                                      for spec in self.pending_blooms)))
            object.__setattr__(self, "_signature", signature)
            return signature

    @property
    def has_pending_blooms(self) -> bool:
        """True if any Bloom filter below is still unresolved."""
        return bool(self.pending_blooms)

    def with_distribution(self, distribution: Distribution) -> "PlanProperties":
        """Copy with a different distribution."""
        return PlanProperties(distribution=distribution,
                              pending_blooms=self.pending_blooms)

    def with_pending(self, pending: FrozenSet) -> "PlanProperties":
        """Copy with a different pending-Bloom set."""
        return PlanProperties(distribution=self.distribution,
                              pending_blooms=frozenset(pending))
