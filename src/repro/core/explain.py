"""Plan rendering (EXPLAIN / EXPLAIN ANALYZE style output).

Used by the examples and the case-study experiments to show, like the paper's
Figures 1, 4 and 6, which join order was chosen, where Bloom filters are built
and applied, which exchanges (broadcast / redistribute) were inserted, and how
estimated row counts compare with the row counts actually observed by the
executor.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .plans import JoinNode, PlanNode, ScanNode


def explain(plan: PlanNode, actual_rows: Optional[Dict[int, float]] = None) -> str:
    """Render a plan as an indented text tree.

    Args:
        plan: Root plan node.
        actual_rows: Optional mapping from ``id(node)`` to observed row counts
            (as produced by the executor's metrics) to render alongside the
            estimates, EXPLAIN ANALYZE style.
    """
    lines: List[str] = []
    _render(plan, 0, lines, actual_rows or {})
    return "\n".join(lines)


def _render(node: PlanNode, depth: int, lines: List[str],
            actual_rows: Dict[int, float]) -> None:
    indent = "  " * depth
    parts = ["%s-> %s" % (indent, node.label())]
    parts.append("(rows=%s" % _format_rows(node.rows))
    if id(node) in actual_rows:
        parts.append("actual=%s" % _format_rows(actual_rows[id(node)]))
    parts.append("cost=%.1f)" % node.cost.total)
    lines.append(" ".join(parts))
    for child in node.children:
        _render(child, depth + 1, lines, actual_rows)


def _format_rows(rows: float) -> str:
    """Human formatting of row counts (150000000 -> 150M)."""
    rows = float(rows)
    if rows >= 1e9:
        return "%.1fB" % (rows / 1e9)
    if rows >= 1e6:
        return "%.1fM" % (rows / 1e6)
    if rows >= 1e3:
        return "%.1fK" % (rows / 1e3)
    return "%d" % int(round(rows))


def join_order_summary(plan: PlanNode) -> List[str]:
    """A compact description of every join in the plan, outer-first.

    Each entry reads like ``hash join: {l, o} x {c} [builds BF on o.o_custkey]``
    and is convenient for asserting plan shapes in tests and printing the
    case-study comparisons.
    """
    summary: List[str] = []
    for node in plan.walk():
        if not isinstance(node, JoinNode):
            continue
        outer = ",".join(sorted(node.outer.relations)) if node.outer else ""
        inner = ",".join(sorted(node.inner.relations)) if node.inner else ""
        entry = "%s: {%s} x {%s}" % (node.method.value, outer, inner)
        if node.built_filters:
            entry += " [builds %s]" % ", ".join(
                str(spec.apply_column) for spec in node.built_filters)
        summary.append(entry)
    return summary


def bloom_filter_summary(plan: PlanNode) -> List[str]:
    """One line per Bloom filter applied by a scan in the plan."""
    summary: List[str] = []
    for node in plan.walk():
        if isinstance(node, ScanNode):
            for spec in node.bloom_filters:
                summary.append("scan %s applies BF on %s built from %s (δ={%s})"
                               % (node.alias, spec.apply_column,
                                  spec.build_column, ",".join(sorted(spec.delta))))
    return summary
