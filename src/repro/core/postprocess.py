"""BF-Post: adding Bloom filters to an already-optimized plan.

This is the traditional approach the paper compares against (and also retains
as a final pass after BF-CBO for filters that cross query-block boundaries):
the plan tree has already been chosen by cost-based optimization *without* any
knowledge of Bloom filters; afterwards, each hash join is inspected and a Bloom
filter is pushed down to the probe-side table scan whenever the usual
profitability checks pass.

Crucially, BF-Post does **not** revise any cardinality estimates — the plan
shape, join order, join methods and row estimates all remain those of the
Bloom-filter-oblivious optimization.  That is exactly why the paper's BF-CBO
can beat it (better join orders) and why BF-Post's intermediate cardinality
estimates have a higher mean absolute error (Section 4.2).
"""

from __future__ import annotations

import copy
import itertools
from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Tuple

from ..storage.catalog import Catalog
from .candidates import BloomFilterSpec
from .cardinality import CardinalityEstimator
from .expressions import ColumnRef
from .heuristics import BfCboSettings
from .plans import JoinMethod, JoinNode, PlanNode, ScanNode
from .query import JoinType, QueryBlock


@dataclass
class PostProcessReport:
    """What the post-processing pass did to a plan."""

    filters_added: List[BloomFilterSpec] = field(default_factory=list)
    rejected_selectivity: int = 0
    rejected_lossless_fk: int = 0
    rejected_too_big: int = 0
    rejected_small_apply: int = 0

    @property
    def num_filters(self) -> int:
        return len(self.filters_added)


class BloomPostProcessor:
    """Adds Bloom filters to a finished plan tree (the BF-Post baseline)."""

    def __init__(self, catalog: Catalog, query: QueryBlock,
                 estimator: CardinalityEstimator,
                 settings: Optional[BfCboSettings] = None) -> None:
        self.catalog = catalog
        self.query = query
        self.estimator = estimator
        self.settings = settings or BfCboSettings.paper_defaults()
        self._spec_counter = itertools.count()

    def process(self, plan: PlanNode) -> Tuple[PlanNode, PostProcessReport]:
        """Return a copy of ``plan`` with profitable Bloom filters attached."""
        plan = copy.deepcopy(plan)
        report = PostProcessReport()
        for node in plan.walk():
            if isinstance(node, JoinNode):
                self._process_join(node, report)
        return plan, report

    # ------------------------------------------------------------------

    def _process_join(self, join: JoinNode, report: PostProcessReport) -> None:
        if join.method is not JoinMethod.HASH:
            return
        if join.join_type in (JoinType.FULL, JoinType.ANTI):
            return
        if join.outer is None or join.inner is None:
            return
        probe_relations = join.outer.relations
        build_relations = join.inner.relations
        for clause in join.clauses:
            if clause.left.relation in probe_relations:
                apply_column, build_column = clause.left, clause.right
            else:
                apply_column, build_column = clause.right, clause.left
            if clause.join_type is JoinType.LEFT and \
                    clause.left.relation == apply_column.relation:
                # The row-preserving side of a left join must not be filtered.
                continue
            spec = self._consider_filter(apply_column, build_column,
                                         build_relations, report)
            if spec is None:
                continue
            scan = self._find_scan(join.outer, apply_column.relation)
            if scan is None:
                continue
            if any(existing.apply_column == spec.apply_column
                   and existing.build_column == spec.build_column
                   for existing in scan.bloom_filters):
                continue
            scan.bloom_filters = scan.bloom_filters + (spec,)
            join.built_filters = join.built_filters + (spec,)
            report.filters_added.append(spec)

    def _consider_filter(self, apply_column: ColumnRef,
                         build_column: ColumnRef,
                         build_relations: FrozenSet[str],
                         report: PostProcessReport) -> Optional[BloomFilterSpec]:
        """Apply the standard post-processing profitability checks."""
        apply_alias = apply_column.relation
        if self.estimator.scan_rows(apply_alias) < self.settings.min_apply_rows:
            report.rejected_small_apply += 1
            return None
        if self.estimator.is_lossless_fk_join(apply_column, build_column,
                                              frozenset(build_relations)):
            report.rejected_lossless_fk += 1
            return None
        estimate = self.estimator.bloom_estimate(apply_column, build_column,
                                                 frozenset(build_relations))
        if estimate.build_ndv > self.settings.max_build_ndv:
            report.rejected_too_big += 1
            return None
        if estimate.selectivity > self.settings.max_selectivity:
            report.rejected_selectivity += 1
            return None
        filter_id = "post%d_%s_%s" % (next(self._spec_counter), apply_alias,
                                      apply_column.column)
        return BloomFilterSpec(filter_id=filter_id, apply_column=apply_column,
                               build_column=build_column,
                               delta=frozenset(build_relations),
                               estimate=estimate)

    @staticmethod
    def _find_scan(plan: PlanNode, alias: str) -> Optional[ScanNode]:
        """The scan node for ``alias`` inside ``plan`` (push-down target)."""
        for node in plan.walk():
            if isinstance(node, ScanNode) and node.alias == alias:
                return node
        return None
