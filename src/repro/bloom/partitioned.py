"""Partitioned Bloom filters for the SMP streaming strategies of Section 3.9.

When a hash join runs with a degree of parallelism larger than one, the build
side is split into partitions and a *partial* Bloom filter is built per
partition.  Depending on the streaming strategy the probe side either:

* looks up the correct partition by hashing the partition column
  (``PartitionedBloomFilter.contains_many`` with ``aligned=True`` semantics), or
* probes a single merged filter obtained by OR-ing the partial bit vectors
  (broadcast / unaligned cases, ``merge()``).

The executor uses this module to mirror the four strategies the paper lists:
build-side broadcast, probe-side broadcast, partition-unaligned and
partition-aligned joins.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

from .filter import BloomFilter, _splitmix, _to_uint64
from .math import DEFAULT_BITS_PER_KEY, DEFAULT_NUM_HASHES


def partition_of(values: Iterable, num_partitions: int) -> np.ndarray:
    """Deterministic partition assignment used by both build and probe sides."""
    if num_partitions <= 0:
        raise ValueError("num_partitions must be positive")
    arr = np.asarray(values if isinstance(values, np.ndarray) else list(values))
    if arr.size == 0:
        return np.zeros(0, dtype=np.int64)
    hashed = _splitmix(_to_uint64(arr))
    return (hashed % np.uint64(num_partitions)).astype(np.int64)


class PartitionedBloomFilter:
    """A set of per-partition Bloom filters sharing one geometry."""

    def __init__(self, num_partitions: int, expected_keys_per_partition: int,
                 bits_per_key: int = DEFAULT_BITS_PER_KEY,
                 num_hashes: int = DEFAULT_NUM_HASHES) -> None:
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        self.num_partitions = num_partitions
        self.partitions: List[BloomFilter] = [
            BloomFilter(expected_keys_per_partition, bits_per_key=bits_per_key,
                        num_hashes=num_hashes)
            for _ in range(num_partitions)
        ]

    @classmethod
    def from_values(cls, values: Sequence, num_partitions: int,
                    bits_per_key: int = DEFAULT_BITS_PER_KEY,
                    num_hashes: int = DEFAULT_NUM_HASHES) -> "PartitionedBloomFilter":
        """Partition ``values`` by hash and build one partial filter each."""
        arr = np.asarray(values if isinstance(values, np.ndarray) else list(values))
        per_part = max(1, int(len(np.unique(arr)) / num_partitions)) if arr.size else 1
        pbf = cls(num_partitions, per_part, bits_per_key=bits_per_key,
                  num_hashes=num_hashes)
        if arr.size:
            parts = partition_of(arr, num_partitions)
            for p in range(num_partitions):
                chunk = arr[parts == p]
                if chunk.size:
                    pbf.partitions[p].add_many(chunk)
        return pbf

    def contains_many(self, values: Sequence) -> np.ndarray:
        """Partition-aware probe (partition-aligned / distributed lookup case)."""
        arr = np.asarray(values if isinstance(values, np.ndarray) else list(values))
        if arr.size == 0:
            return np.zeros(0, dtype=bool)
        parts = partition_of(arr, self.num_partitions)
        result = np.zeros(arr.shape[0], dtype=bool)
        for p in range(self.num_partitions):
            mask = parts == p
            if mask.any():
                result[mask] = self.partitions[p].contains_many(arr[mask])
        return result

    def merge(self) -> BloomFilter:
        """OR all partial filters into one (broadcast / unaligned strategies)."""
        geometries = {(f.num_bits, f.num_hashes) for f in self.partitions}
        if len(geometries) != 1:
            raise ValueError("partial filters have inconsistent geometry")
        merged = self.partitions[0].copy()
        for part in self.partitions[1:]:
            merged = merged.union(part)
        return merged

    @property
    def size_bytes(self) -> int:
        """Total size of all partial bit vectors in bytes."""
        return sum(f.size_bytes for f in self.partitions)

    def __repr__(self) -> str:
        return "PartitionedBloomFilter(partitions=%d)" % self.num_partitions
