"""Bloom filter primitives used by both the optimizer and the executor."""

from .filter import BloomFilter
from .math import (
    DEFAULT_BITS_PER_KEY,
    DEFAULT_MAX_BUILD_NDV,
    DEFAULT_NUM_HASHES,
    bits_for_keys,
    bloom_filter_bytes,
    expected_fpr_for_build_ndv,
    false_positive_rate,
    optimal_num_bits,
)
from .partitioned import PartitionedBloomFilter, partition_of

__all__ = [
    "BloomFilter",
    "PartitionedBloomFilter",
    "partition_of",
    "false_positive_rate",
    "optimal_num_bits",
    "bits_for_keys",
    "expected_fpr_for_build_ndv",
    "bloom_filter_bytes",
    "DEFAULT_NUM_HASHES",
    "DEFAULT_BITS_PER_KEY",
    "DEFAULT_MAX_BUILD_NDV",
]
