"""A vectorised single-column Bloom filter.

The runtime builds one Bloom filter per hash-join build side and join column
(the paper restricts itself to single-column filters, Section 3.3) and applies
it to the probe-side table scan.  The implementation is numpy based so that
bulk inserts and membership probes over whole columns are cheap enough to run
the TPC-H workload at the reproduction scale factors.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from .math import (
    DEFAULT_BITS_PER_KEY,
    DEFAULT_NUM_HASHES,
    bits_for_keys,
    false_positive_rate,
)

# Two independent 64-bit mixers (splitmix64-style constants).  Using two
# derived hashes of one base hash is the classic "double hashing" scheme and
# matches the paper's fixed choice of two hash functions.
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_GOLDEN = np.uint64(0x9E3779B97F4A7C15)


def _to_uint64(values: np.ndarray) -> np.ndarray:
    """Normalise an arbitrary column into unsigned 64-bit hash inputs."""
    arr = np.asarray(values)
    if arr.dtype.kind in ("i", "u", "b"):
        return arr.astype(np.uint64, copy=False)
    if arr.dtype.kind == "f":
        return arr.view(np.uint64) if arr.dtype == np.float64 else arr.astype(
            np.float64).view(np.uint64)
    if arr.dtype.kind in ("U", "S", "O"):
        # Hash python objects / strings individually; this path is only used
        # for low-cardinality dimension columns in the reproduction workload.
        return np.fromiter((np.uint64(hash(v) & 0xFFFFFFFFFFFFFFFF) for v in arr),
                           dtype=np.uint64, count=len(arr))
    if arr.dtype.kind == "M":  # datetime64
        return arr.view(np.int64).astype(np.uint64)
    raise TypeError("unsupported column dtype for Bloom hashing: %s" % arr.dtype)


def _splitmix(values: np.ndarray) -> np.ndarray:
    """Vectorised splitmix64 finaliser producing well-mixed 64-bit hashes."""
    with np.errstate(over="ignore"):
        z = (values + _GOLDEN).astype(np.uint64)
        z = (z ^ (z >> np.uint64(30))) * _MIX1
        z = (z ^ (z >> np.uint64(27))) * _MIX2
        z = z ^ (z >> np.uint64(31))
    return z


class BloomFilter:
    """Bit-vector Bloom filter with two derived hash functions.

    Attributes:
        num_bits: Size of the bit array; always a power of two.
        num_hashes: Number of hash probes per key (two throughout the paper).
        num_inserted: Number of (non-distinct) insert calls observed, used for
            saturation monitoring.
    """

    def __init__(self, expected_keys: int,
                 bits_per_key: int = DEFAULT_BITS_PER_KEY,
                 num_hashes: int = DEFAULT_NUM_HASHES,
                 num_bits: Optional[int] = None) -> None:
        if expected_keys < 0:
            raise ValueError("expected_keys must be non-negative")
        if num_hashes <= 0:
            raise ValueError("num_hashes must be positive")
        self.num_bits = int(num_bits) if num_bits else bits_for_keys(
            expected_keys, bits_per_key)
        if self.num_bits & (self.num_bits - 1):
            raise ValueError("num_bits must be a power of two")
        self.num_hashes = num_hashes
        self.num_inserted = 0
        self._mask = np.uint64(self.num_bits - 1)
        self._bits = np.zeros(self.num_bits, dtype=bool)

    # -- construction -----------------------------------------------------

    @classmethod
    def from_values(cls, values: Iterable, bits_per_key: int = DEFAULT_BITS_PER_KEY,
                    num_hashes: int = DEFAULT_NUM_HASHES) -> "BloomFilter":
        """Build a filter sized for, and populated with, ``values``."""
        arr = np.asarray(list(values) if not isinstance(values, np.ndarray) else values)
        distinct = len(np.unique(arr)) if arr.size else 0
        bf = cls(distinct, bits_per_key=bits_per_key, num_hashes=num_hashes)
        if arr.size:
            bf.add_many(arr)
        return bf

    def _positions(self, values: np.ndarray) -> np.ndarray:
        """Return an ``(num_hashes, n)`` array of bit positions for ``values``."""
        base = _splitmix(_to_uint64(values))
        second = _splitmix(base ^ _MIX1)
        positions = np.empty((self.num_hashes, base.shape[0]), dtype=np.uint64)
        for i in range(self.num_hashes):
            with np.errstate(over="ignore"):
                combined = base + np.uint64(i) * second
            positions[i] = combined & self._mask
        return positions

    def add_many(self, values: Iterable) -> None:
        """Insert every element of ``values`` into the filter."""
        arr = np.asarray(values if isinstance(values, np.ndarray) else list(values))
        if arr.size == 0:
            return
        positions = self._positions(arr)
        self._bits[positions.reshape(-1)] = True
        self.num_inserted += int(arr.size)

    def add(self, value) -> None:
        """Insert a single value."""
        self.add_many(np.asarray([value]))

    # -- probing ----------------------------------------------------------

    def contains_many(self, values: Iterable) -> np.ndarray:
        """Vectorised membership test; returns a boolean mask."""
        arr = np.asarray(values if isinstance(values, np.ndarray) else list(values))
        if arr.size == 0:
            return np.zeros(0, dtype=bool)
        positions = self._positions(arr)
        result = np.ones(arr.shape[0], dtype=bool)
        for i in range(self.num_hashes):
            result &= self._bits[positions[i]]
        return result

    def __contains__(self, value) -> bool:
        return bool(self.contains_many(np.asarray([value]))[0])

    # -- introspection ----------------------------------------------------

    @property
    def saturation(self) -> float:
        """Fraction of bits set; near 1.0 means the filter cannot filter."""
        return float(self._bits.mean()) if self.num_bits else 1.0

    @property
    def size_bytes(self) -> int:
        """Approximate in-memory size of the bit vector in bytes (packed)."""
        return self.num_bits // 8

    def expected_fpr(self) -> float:
        """Expected false-positive rate given the observed insert count."""
        return false_positive_rate(self.num_bits, self.num_inserted,
                                   self.num_hashes)

    # -- merging ----------------------------------------------------------

    def union(self, other: "BloomFilter") -> "BloomFilter":
        """Merge two filters by OR-ing their bit vectors (paper Section 3.9).

        Both filters must have identical geometry (bits and hash count); this
        is how per-thread partial filters are combined under probe-side
        broadcast and unaligned partition joins.
        """
        if (self.num_bits != other.num_bits
                or self.num_hashes != other.num_hashes):
            raise ValueError("cannot union Bloom filters with different geometry")
        merged = BloomFilter(0, num_bits=self.num_bits, num_hashes=self.num_hashes)
        merged._bits = self._bits | other._bits
        merged.num_inserted = self.num_inserted + other.num_inserted
        return merged

    def copy(self) -> "BloomFilter":
        """Return a deep copy of this filter."""
        dup = BloomFilter(0, num_bits=self.num_bits, num_hashes=self.num_hashes)
        dup._bits = self._bits.copy()
        dup.num_inserted = self.num_inserted
        return dup

    def __repr__(self) -> str:
        return ("BloomFilter(bits=%d, hashes=%d, inserted=%d, saturation=%.3f)"
                % (self.num_bits, self.num_hashes, self.num_inserted,
                   self.saturation))
