"""Analytical helpers for Bloom filter sizing and false-positive rates.

The paper (Section 3.5) fixes the number of hash functions at two for
performance reasons, derives the number of bits from an upper-bound estimate of
the number of distinct values inserted on the build side, and restricts Bloom
filters whose bit array would spill out of the L2 cache (Heuristic 5).  The
functions in this module implement the standard Bloom filter mathematics used
by both the optimizer cost model and the runtime filter implementation.
"""

from __future__ import annotations

import math

#: Number of hash functions used throughout the system (paper Section 3.5).
DEFAULT_NUM_HASHES = 2

#: Default bits-per-distinct-value used when sizing a filter.  Eight bits per
#: key with two hash functions gives a false-positive rate of roughly 4.9%.
DEFAULT_BITS_PER_KEY = 8

#: Default Bloom-filter size budget, expressed as the maximum number of
#: distinct build-side values (paper Section 4.1 uses 2 million).
DEFAULT_MAX_BUILD_NDV = 2_000_000


def false_positive_rate(num_bits: int, num_keys: int,
                        num_hashes: int = DEFAULT_NUM_HASHES) -> float:
    """Expected false-positive probability of a Bloom filter.

    Uses the classic approximation ``(1 - e^(-k*n/m))^k`` where ``m`` is the
    number of bits, ``n`` the number of inserted keys and ``k`` the number of
    hash functions.

    Args:
        num_bits: Size of the bit array (``m``).  Must be positive.
        num_keys: Number of distinct keys inserted (``n``).  Non-negative.
        num_hashes: Number of hash functions (``k``).

    Returns:
        The expected false-positive probability in ``[0, 1]``.
    """
    if num_bits <= 0:
        raise ValueError("num_bits must be positive, got %r" % (num_bits,))
    if num_keys < 0:
        raise ValueError("num_keys must be non-negative, got %r" % (num_keys,))
    if num_hashes <= 0:
        raise ValueError("num_hashes must be positive, got %r" % (num_hashes,))
    if num_keys == 0:
        return 0.0
    fill = 1.0 - math.exp(-float(num_hashes) * num_keys / num_bits)
    return min(1.0, fill ** num_hashes)


def optimal_num_bits(num_keys: int, target_fpr: float,
                     num_hashes: int = DEFAULT_NUM_HASHES) -> int:
    """Smallest power-of-two bit count achieving ``target_fpr`` for ``num_keys``.

    The optimizer sizes Bloom filters from an upper bound on the build-side
    distinct count; rounding to a power of two keeps the runtime modulo cheap
    and mirrors common production implementations.
    """
    if num_keys < 0:
        raise ValueError("num_keys must be non-negative")
    if not 0.0 < target_fpr < 1.0:
        raise ValueError("target_fpr must be in (0, 1)")
    if num_keys == 0:
        return 64
    bits = 64
    while false_positive_rate(bits, num_keys, num_hashes) > target_fpr:
        bits *= 2
        if bits > 1 << 40:
            break
    return bits


def bits_for_keys(num_keys: int,
                  bits_per_key: int = DEFAULT_BITS_PER_KEY) -> int:
    """Bit-array size used by default: ``bits_per_key`` bits per distinct key.

    Always returns a power of two of at least 64 bits so that the hash-to-bit
    mapping can use a mask instead of a modulo.
    """
    if num_keys < 0:
        raise ValueError("num_keys must be non-negative")
    needed = max(64, num_keys * bits_per_key)
    bits = 64
    while bits < needed:
        bits *= 2
    return bits


def expected_fpr_for_build_ndv(build_ndv: int,
                               bits_per_key: int = DEFAULT_BITS_PER_KEY,
                               num_hashes: int = DEFAULT_NUM_HASHES) -> float:
    """False-positive rate the optimizer should assume for a planned filter.

    This is the planning-time counterpart of :func:`false_positive_rate`: the
    filter has not been built yet, so its size is derived from the estimated
    build-side distinct count exactly as the runtime will size it.
    """
    build_ndv = max(0, int(build_ndv))
    bits = bits_for_keys(build_ndv, bits_per_key)
    return false_positive_rate(bits, build_ndv, num_hashes)


def bloom_filter_bytes(num_bits: int) -> int:
    """Size in bytes of a bit array with ``num_bits`` bits."""
    if num_bits < 0:
        raise ValueError("num_bits must be non-negative")
    return (num_bits + 7) // 8
