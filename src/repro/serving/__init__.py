"""repro.serving — the async multi-tenant serving tier.

The serving tier turns the sync engine into a shared service: an asyncio
front end (:class:`AsyncDatabase` / :class:`AsyncSession`) over a bounded
worker pool, with

* **admission control** — a bounded queue (:class:`AdmissionQueue`) that
  sheds excess load with typed :class:`~repro.errors.AdmissionError`
  backpressure instead of buffering unboundedly,
* **multi-tenant fairness** — per-tenant concurrency quotas and weighted
  fair dequeueing (:class:`TenantQuota`), so one tenant cannot starve the
  rest,
* **deadlines and cancellation** — per-request
  :class:`~repro.executor.cancel.CancelToken` threaded into the executor,
  which stops within one morsel and raises
  :class:`~repro.errors.QueryCancelledError`,
* **a shared result cache** — :class:`ResultCache`, keyed on the same
  fingerprint/mode/settings projection as the plan cache plus the catalog
  version, with per-table invalidation,
* **observability** — :class:`ServingMetrics` with p50/p95/p99 latency
  snapshots per tenant,
* **fault tolerance** — an optional :class:`RetryPolicy` retries
  *transient* failures (worker crashes, shared-memory pressure) with
  deterministic backoff and per-tenant retry budgets; see
  ``docs/robustness.md``.

See ``docs/serving.md`` for the architecture and knob reference.
"""

from .cache import ResultCache
from .database import (
    DEFAULT_TENANT,
    DEFAULT_WORKERS,
    AsyncDatabase,
    AsyncSession,
)
from .metrics import (
    LatencyRecorder,
    LatencySnapshot,
    ServingMetrics,
    ServingSnapshot,
    percentile,
)
from .queue import DEFAULT_MAX_DEPTH, AdmissionQueue
from .quotas import DEFAULT_QUOTA, TenantQuota
from .retry import DEFAULT_BACKOFF_BASE_S, DEFAULT_MAX_ATTEMPTS, RetryPolicy

__all__ = [
    "AdmissionQueue",
    "AsyncDatabase",
    "AsyncSession",
    "DEFAULT_BACKOFF_BASE_S",
    "DEFAULT_MAX_ATTEMPTS",
    "DEFAULT_MAX_DEPTH",
    "DEFAULT_QUOTA",
    "DEFAULT_TENANT",
    "DEFAULT_WORKERS",
    "LatencyRecorder",
    "LatencySnapshot",
    "ResultCache",
    "RetryPolicy",
    "ServingMetrics",
    "ServingSnapshot",
    "TenantQuota",
    "percentile",
]
