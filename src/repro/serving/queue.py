"""The admission-control queue: bounded depth, quotas, weighted fairness.

The serving tier's front door.  :meth:`AdmissionQueue.submit` either accepts
a request or sheds it with a typed :class:`~repro.errors.AdmissionError` —
there is no unbounded buffering, so a traffic spike degrades into fast
rejections the client can retry instead of ever-growing latency.  Shedding
happens on three conditions: global depth reached, the tenant's private
backlog cap reached (one tenant can therefore never occupy the whole queue),
or the queue closed.

Worker threads call :meth:`AdmissionQueue.next`, which blocks until a
request is *schedulable* and picks tenants by weighted fair queueing (see
:mod:`repro.serving.quotas`): among tenants with a non-empty backlog and
in-flight below their ``max_concurrency``, the one with the smallest virtual
finish time is served and charged ``1 / weight``.  A tenant at its
concurrency quota is simply ineligible — its backlog waits without blocking
anyone else's, which is what "an over-quota tenant cannot starve others"
means operationally.

Admission also has a **memory dimension** when the queue is built with a
:class:`~repro.executor.memory.MemoryGovernor`: a request carrying an
``estimated_bytes`` attribute larger than the governor's currently
available pool is *deferred* — it stays queued (counted in
``memory_deferrals``) and the scheduler serves other tenants until running
queries release their grants.  Deferral, not shedding: memory pressure is
transient by nature, so queueing is the right rung of the degradation
ladder (cache-evict → spill → queue → shed; ``docs/memory.md``).  A request
whose estimate exceeds the *whole* pool can never fit and is dispatched
anyway — the executor's per-query budget will deny its reservations and the
operators degrade to their spill paths, which is the livelock guard.

The queue is a plain ``threading.Condition`` machine with no asyncio
dependency: the async front end submits from the event loop (submit never
blocks) and thread workers block in :meth:`next`.
"""

from __future__ import annotations

import threading
from typing import Dict, Mapping, Optional, Tuple, TypeVar

from ..errors import AdmissionError
from ..executor.memory import MemoryGovernor
from ..faults import SITE_ADMISSION_DEQUEUE, FaultPlan
from .quotas import DEFAULT_QUOTA, TenantQuota, TenantState

T = TypeVar("T")

#: Default bound on requests queued (not yet dequeued) across all tenants.
DEFAULT_MAX_DEPTH = 256


class AdmissionQueue:
    """Bounded multi-tenant request queue with WFQ dequeueing.

    Args:
        max_depth: Global cap on queued (not yet running) requests;
            submissions beyond it raise :class:`AdmissionError`.
        default_quota: Quota applied to tenants without an explicit entry
            in ``quotas``.
        quotas: Per-tenant quota overrides, keyed by tenant name.
        faults: Optional :class:`~repro.faults.FaultPlan` consulted at the
            ``admission-dequeue`` site.  An injected fault makes
            :meth:`next` drop the pick *before* charging or incrementing
            in-flight and return ``None``, modelling a worker losing a
            dequeue race — the request stays queued for the next worker.
        governor: Optional :class:`~repro.executor.memory.MemoryGovernor`
            adding the memory dimension to scheduling: a tenant whose
            head-of-backlog request declares more ``estimated_bytes`` than
            the governor currently has available is deferred (stays queued,
            counted in :attr:`memory_deferrals`) instead of dispatched —
            unless the estimate exceeds the whole pool, which dispatches
            anyway and lets the executor spill (the livelock guard).
    """

    def __init__(self, max_depth: int = DEFAULT_MAX_DEPTH, *,
                 default_quota: TenantQuota = DEFAULT_QUOTA,
                 quotas: Optional[Mapping[str, TenantQuota]] = None,
                 faults: Optional[FaultPlan] = None,
                 governor: Optional[MemoryGovernor] = None) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1, got %r" % max_depth)
        self.max_depth = max_depth
        self.default_quota = default_quota
        self.governor = governor
        self._configured = dict(quotas or {})
        self._tenants: Dict[str, TenantState] = {}
        self._depth = 0
        self._virtual_time = 0.0
        self._closed = False
        self._faults = faults
        self._dequeue_faults = 0
        self._memory_deferrals = 0
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)

    # -- introspection ------------------------------------------------------

    @property
    def depth(self) -> int:
        """Requests currently queued (not yet dequeued) across tenants."""
        with self._lock:
            return self._depth

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    @property
    def dequeue_faults(self) -> int:
        """Dequeue attempts dropped by an injected ``admission-dequeue``
        fault (the request stayed queued and was re-picked later)."""
        with self._lock:
            return self._dequeue_faults

    @property
    def memory_deferrals(self) -> int:
        """Scheduling decisions that skipped a tenant because its head
        request's memory estimate did not fit the governor's free pool."""
        with self._lock:
            return self._memory_deferrals

    def in_flight(self, tenant: str) -> int:
        """Requests of ``tenant`` dequeued and not yet released."""
        with self._lock:
            state = self._tenants.get(tenant)
            return state.in_flight if state is not None else 0

    def quota_for(self, tenant: str) -> TenantQuota:
        """The effective quota of ``tenant`` (explicit or default)."""
        return self._configured.get(tenant, self.default_quota)

    # -- the producer side --------------------------------------------------

    def submit(self, tenant: str, request: T) -> None:
        """Admit one request or shed it with :class:`AdmissionError`.

        Never blocks — backpressure is an immediate typed error, not a
        stalled event loop.
        """
        with self._lock:
            if self._closed:
                raise AdmissionError("serving queue is closed")
            if self._depth >= self.max_depth:
                raise AdmissionError(
                    "admission queue is full (%d queued, max_depth=%d); "
                    "shed load and retry" % (self._depth, self.max_depth))
            state = self._tenants.get(tenant)
            if state is None:
                state = TenantState(tenant, self.quota_for(tenant))
                self._tenants[tenant] = state
            if state.queue_full:
                raise AdmissionError(
                    "tenant %r backlog is full (%d queued, max_queued=%d)"
                    % (tenant, len(state.backlog), state.quota.max_queued))
            state.backlog.append(request)
            self._depth += 1
            self._ready.notify()

    # -- the worker side ----------------------------------------------------

    def next(self, timeout: Optional[float] = None,
             ) -> Optional[Tuple[str, T]]:
        """Dequeue the next schedulable request, WFQ-fair across tenants.

        Blocks until a request is schedulable, the queue closes (returns
        ``None`` once drained), or ``timeout`` elapses (returns ``None``).
        The dequeued tenant's in-flight count is incremented; the worker
        must call :meth:`release` when the request finishes, succeed or
        fail.
        """
        with self._lock:
            while True:
                state = self._pick_locked()
                if state is not None:
                    if self._faults is not None \
                            and self._faults.fire(SITE_ADMISSION_DEQUEUE) \
                            is not None:
                        # Injected lost dequeue: leave the request queued
                        # (nothing charged, nothing in flight) and make this
                        # worker poll again, as a crashed-between-pick-and-run
                        # worker would.
                        self._dequeue_faults += 1
                        return None
                    request = state.backlog.popleft()
                    self._depth -= 1
                    state.in_flight += 1
                    # Global virtual time tracks the *start* tag of the
                    # request now served (the smallest eligible finish
                    # time), not its finish tag — basing the next charge on
                    # finish tags would erase the weight ratios between
                    # continuously backlogged tenants.
                    self._virtual_time = max(self._virtual_time,
                                             state.virtual_time)
                    state.charge(self._virtual_time)
                    return (state.name, request)
                if self._closed and self._depth == 0:
                    return None
                if not self._ready.wait(timeout):
                    return None

    def _pick_locked(self) -> Optional[TenantState]:
        """The eligible tenant with the smallest virtual time, if any.

        With a governor, a tenant whose head-of-backlog request estimates
        more bytes than the pool has free is deferred (skipped and
        counted); an estimate above the whole pool can never fit and is
        not deferred — the executor's budget degrades it to spill instead
        (the livelock guard).
        """
        best: Optional[TenantState] = None
        for name in sorted(self._tenants):
            state = self._tenants[name]
            if not state.eligible:
                continue
            if self._deferred_locked(state):
                continue
            if best is None or state.sort_key() < best.sort_key():
                best = state
        return best

    def _deferred_locked(self, state: TenantState) -> bool:
        """True when ``state``'s head request must wait for pool bytes."""
        if self.governor is None or self.governor.pool_bytes is None:
            return False
        estimated = int(getattr(state.backlog[0], "estimated_bytes", 0) or 0)
        if estimated <= 0 or estimated > self.governor.pool_bytes:
            return False
        available = self.governor.available()
        if available is None or estimated <= available:
            return False
        self._memory_deferrals += 1
        return True

    def release(self, tenant: str) -> None:
        """Mark one of ``tenant``'s in-flight requests finished."""
        with self._lock:
            state = self._tenants.get(tenant)
            if state is None or state.in_flight <= 0:
                raise ValueError("release without matching dequeue for "
                                 "tenant %r" % tenant)
            state.in_flight -= 1
            # A slot opened: a backlogged request of this tenant may have
            # become eligible.
            self._ready.notify_all()

    # -- shutdown -----------------------------------------------------------

    def close(self, drain: bool = False) -> "list[Tuple[str, T]]":
        """Stop admissions; wake every blocked worker.

        With ``drain=False`` (the default) the backlog is discarded and the
        dropped ``(tenant, request)`` pairs are returned so the caller can
        fail their futures — shutdown never waits on queued work.
        ``drain=True`` keeps queued requests for workers to finish and
        returns an empty list.  Close is idempotent.
        """
        with self._lock:
            self._closed = True
            dropped: "list[Tuple[str, T]]" = []
            if not drain:
                for name in sorted(self._tenants):
                    state = self._tenants[name]
                    dropped.extend((name, request)
                                   for request in state.backlog)
                    state.backlog.clear()
                self._depth = 0
            self._ready.notify_all()
            return dropped


__all__ = ["AdmissionQueue", "DEFAULT_MAX_DEPTH"]

