"""The asyncio serving front end: ``await`` queries on a sync engine.

:class:`AsyncDatabase` wraps an existing :class:`repro.api.Database` behind a
bounded worker pool and the admission-control queue:

* ``await adb.execute_async(sql, tenant="dashboards", timeout=0.5)`` admits
  the request (or sheds it immediately with a typed
  :class:`~repro.errors.AdmissionError` — backpressure is an error, never an
  unbounded buffer), parks it in the weighted-fair queue, and resolves when
  a worker thread finishes executing it through the shared plan and result
  caches.
* Deadlines and cancellation are cooperative: every request carries a
  :class:`~repro.executor.cancel.CancelToken` that the executor polls at
  operator and morsel boundaries, so an abandoned query stops within one
  morsel and surfaces as :class:`~repro.errors.QueryCancelledError`.
  Cancelling the awaiting task (client disconnect) trips the same token.
* Per-tenant fairness comes from the queue (:mod:`repro.serving.queue`):
  concurrency quotas bound each tenant's in-flight work and weighted fair
  dequeueing divides the backlog bandwidth, so one flooding tenant cannot
  starve the rest.
* Transient failures (:class:`~repro.errors.TransientError` — worker
  crashes, shared-memory pressure, an exhausted memory-governor pool) are
  retried on the worker under an optional
  :class:`~repro.serving.retry.RetryPolicy` with deterministic backoff and
  per-tenant retry budgets; permanent errors and cancellation never retry.
  See ``docs/robustness.md``.
* Memory pressure defers rather than sheds: each admitted
  :class:`~repro.core.query.QueryBlock` carries a scan-bytes estimate from
  the catalog statistics (cardinality × row width), and the queue holds a
  request whose estimate exceeds the governor's free pool until running
  queries release their grants — the "queue" rung of the degradation
  ladder in ``docs/memory.md``.

:class:`AsyncSession` is the tenant-bound handle (`adb.session("t1")`) with
the same ``execute``/``execute_async`` surface.

The event loop never blocks: submission is non-blocking, results arrive via
``asyncio.wrap_future``, and all engine work happens on plain worker threads
(enforced by the ``blocking-in-async`` lint rule over this package).
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..core.heuristics import BfCboSettings
from ..core.optimizer import OptimizerMode
from ..core.query import QueryBlock
from ..errors import (
    AdmissionError,
    QueryCancelledError,
    SessionClosedError,
    TransientError,
)
from ..executor.cancel import CancelToken, DEADLINE_REASON
from ..storage.catalog import CatalogError
from .metrics import ServingMetrics, ServingSnapshot
from .queue import AdmissionQueue, DEFAULT_MAX_DEPTH
from .quotas import DEFAULT_QUOTA, TenantQuota
from .retry import RetryPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..api.database import Database
    from ..api.session import QueryResult, Session

QueryLike = Union[str, QueryBlock]

#: Tenant used when a request names none.
DEFAULT_TENANT = "default"

#: Worker threads pulling from the admission queue.
DEFAULT_WORKERS = 4

#: How often idle workers wake to observe shutdown (seconds).
_IDLE_POLL_S = 0.1


@dataclass
class _ServingRequest:
    """One admitted request parked in the queue."""

    query: QueryLike
    mode: Optional[OptimizerMode]
    settings: Optional[BfCboSettings]
    name: str
    token: CancelToken
    future: "Future[QueryResult]"
    submitted_at: float = field(default_factory=time.perf_counter)
    #: Catalog-derived scan-bytes estimate; the admission queue's memory
    #: dimension defers dispatch while this exceeds the governor's free
    #: pool.  Zero (unknown) never defers.
    estimated_bytes: int = 0


class AsyncDatabase:
    """Asyncio multi-tenant serving tier over a sync :class:`Database`.

    Args:
        database: The engine to serve; its plan and result caches are
            shared by every tenant (enable the result cache with
            ``Database(..., result_cache_size=...)`` so hot identical
            queries cost one execution).
        workers: Worker threads executing admitted queries.
        max_queue_depth: Global admission-queue bound; submissions beyond
            it raise :class:`~repro.errors.AdmissionError`.
        default_quota: Quota for tenants without an explicit entry.
        quotas: Per-tenant :class:`~repro.serving.quotas.TenantQuota`
            overrides.
        retry_policy: Optional :class:`~repro.serving.retry.RetryPolicy`.
            When set, a request failing with
            :class:`~repro.errors.TransientError` is re-executed on the
            same worker after deterministic backoff, up to
            ``max_attempts`` and the tenant's retry budget.  Permanent
            errors and cancellation are never retried.  ``None`` (the
            default) fails fast, matching the pre-retry behaviour.
        retry_sleep: Backoff sleep function (seconds); injectable so tests
            assert the schedule without waiting it out.
        session_kwargs: Forwarded to ``database.connect`` for the serving
            session (e.g. ``executor_workers`` for morsel parallelism
            inside each query); ``history_limit`` is forced to 0.

    The wrapped database's :class:`~repro.faults.FaultPlan` (if any) also
    drives the serving tier's ``admission-dequeue`` and result-cache fault
    sites, so one seeded plan exercises the whole stack.
    """

    def __init__(self, database: "Database", *,
                 workers: int = DEFAULT_WORKERS,
                 max_queue_depth: int = DEFAULT_MAX_DEPTH,
                 default_quota: TenantQuota = DEFAULT_QUOTA,
                 quotas: Optional[Mapping[str, TenantQuota]] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 retry_sleep: Callable[[float], None] = time.sleep,
                 **session_kwargs: Any) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1, got %r" % workers)
        self.database = database
        self.queue = AdmissionQueue(max_queue_depth,
                                    default_quota=default_quota,
                                    quotas=quotas,
                                    faults=database.fault_plan,
                                    governor=database.memory_governor)
        self.metrics = ServingMetrics()
        self._retry_policy = retry_policy
        self._retry_sleep = retry_sleep
        self._retry_lock = threading.Lock()
        self._retry_used: Dict[str, int] = {}
        session_kwargs["history_limit"] = 0
        self._session: "Session" = database.connect(**session_kwargs)
        self._closed = False
        self._close_lock = threading.Lock()
        self._workers: List[threading.Thread] = []
        for index in range(workers):
            thread = threading.Thread(target=self._worker_loop,
                                      name="repro-serving-%d" % index,
                                      daemon=True)
            thread.start()
            self._workers.append(thread)

    # -- the awaitable surface ---------------------------------------------

    async def execute_async(self, query: QueryLike, *,
                            tenant: str = DEFAULT_TENANT,
                            timeout: Optional[float] = None,
                            cancel: Optional[CancelToken] = None,
                            mode: Optional[OptimizerMode] = None,
                            settings: Optional[BfCboSettings] = None,
                            name: str = "query") -> "QueryResult":
        """Admit, enqueue and await one query.

        Raises :class:`~repro.errors.AdmissionError` immediately when the
        queue (or the tenant's backlog) is full, and
        :class:`~repro.errors.QueryCancelledError` when ``timeout`` (or
        the ``cancel`` token's deadline) expires — the worker abandons the
        execution within one morsel of the same instant.  Cancelling the
        awaiting task trips the token too, so a disconnected client stops
        paying for its query.
        """
        token = cancel if cancel is not None else CancelToken()
        if timeout is not None:
            token.expire_in(timeout)
        request = self._admit(tenant, query, mode, settings, name, token)
        wrapped = asyncio.wrap_future(request.future)
        try:
            remaining = token.remaining()
            if remaining is None:
                return await wrapped
            return await asyncio.wait_for(wrapped, timeout=remaining)
        except asyncio.TimeoutError:
            token.cancel(DEADLINE_REASON)
            self.metrics.count("cancelled")
            raise QueryCancelledError(
                "query %r missed its deadline after %.3fs" % (name, timeout
                 if timeout is not None else 0.0),
                reason=DEADLINE_REASON) from None
        except asyncio.CancelledError:
            # The awaiting task was cancelled (client gone): stop the
            # execution cooperatively and re-raise into the task.
            token.cancel("client disconnected")
            raise

    def _admit(self, tenant: str, query: QueryLike,
               mode: Optional[OptimizerMode],
               settings: Optional[BfCboSettings], name: str,
               token: CancelToken) -> _ServingRequest:
        """Queue one request, counting admission and shed outcomes."""
        if self._closed:
            raise SessionClosedError("serving tier is closed")
        request = _ServingRequest(query=query, mode=mode, settings=settings,
                                  name=name, token=token, future=Future(),
                                  estimated_bytes=self._estimate_bytes(query))
        try:
            self.queue.submit(tenant, request)
        except AdmissionError:
            self.metrics.count("rejected")
            raise
        self.metrics.count("admitted")
        return request

    def _estimate_bytes(self, query: QueryLike) -> int:
        """Catalog scan-bytes estimate for the queue's memory dimension.

        Sums cardinality × estimated row width over the query's base
        relations — a cheap statistics-only upper-ish bound on what the
        execution materialises.  Plain SQL strings (not yet bound) and
        relations without statistics estimate zero, which never defers:
        an unknown footprint dispatches and the executor's per-query
        budget degrades it to spill if it does not fit.
        """
        if not isinstance(query, QueryBlock):
            return 0
        catalog = self.database.catalog
        total = 0
        for relation in query.relations:
            try:
                total += catalog.statistics(relation.table_name).estimated_bytes
            except CatalogError:
                continue
        return total

    async def execute_many(self, queries: Sequence[QueryLike], *,
                           tenant: str = DEFAULT_TENANT,
                           timeout: Optional[float] = None,
                           mode: Optional[OptimizerMode] = None,
                           settings: Optional[BfCboSettings] = None,
                           name: str = "batch",
                           return_errors: bool = True,
                           ) -> "List[Union[QueryResult, BaseException]]":
        """Admit and await a batch concurrently, with partial-failure slots.

        All queries are admitted up front and awaited together, so the
        batch shares the queue's weighted-fair bandwidth like any other
        traffic.  With ``return_errors=True`` (the default here — a batch
        caller usually wants every outcome) the returned list holds, per
        slot, either the :class:`~repro.api.session.QueryResult` or the
        typed exception that query raised; one bad query never voids its
        siblings' results.  With ``return_errors=False`` the first failing
        slot's exception is re-raised after the whole batch settles,
        matching the sync :meth:`Database.execute_many
        <repro.api.database.Database.execute_many>` contract.
        """
        pending = [self.execute_async(query, tenant=tenant, timeout=timeout,
                                      mode=mode, settings=settings,
                                      name="%s[%d]" % (name, index))
                   for index, query in enumerate(queries)]
        outcomes = await asyncio.gather(*pending, return_exceptions=True)
        if not return_errors:
            for outcome in outcomes:
                if isinstance(outcome, BaseException):
                    raise outcome
        return list(outcomes)

    def session(self, tenant: str = DEFAULT_TENANT, *,
                mode: Optional[OptimizerMode] = None,
                settings: Optional[BfCboSettings] = None,
                timeout: Optional[float] = None) -> "AsyncSession":
        """A tenant-bound :class:`AsyncSession` over this serving tier."""
        return AsyncSession(self, tenant, mode=mode, settings=settings,
                            timeout=timeout)

    # Alias mirroring ``Database.connect``.
    connect = session

    def snapshot(self) -> ServingSnapshot:
        """Current serving counters and latency percentiles."""
        return self.metrics.snapshot()

    # -- the worker side ----------------------------------------------------

    def _worker_loop(self) -> None:
        """One worker thread: dequeue fairly, execute, resolve the future."""
        while True:
            item: Optional[Tuple[str, _ServingRequest]] = \
                self.queue.next(timeout=_IDLE_POLL_S)
            if item is None:
                if self.queue.closed:
                    return
                continue
            tenant, request = item
            try:
                self._serve(tenant, request)
            finally:
                self.queue.release(tenant)

    def _serve(self, tenant: str, request: _ServingRequest) -> None:
        """Execute one dequeued request, retrying transient failures.

        The retry loop discriminates on the error taxonomy
        (``docs/robustness.md``): cancellation resolves immediately
        (retrying a cancelled query defeats the cancel),
        :class:`~repro.errors.TransientError` consults
        :meth:`_retry_delay`, and everything else — permanent, by
        definition — fails the future on the first occurrence.
        """
        future = request.future
        if not future.set_running_or_notify_cancel():
            # The awaiting side gave up while the request was queued.
            self.metrics.count("cancelled")
            return
        attempt = 1
        while True:
            try:
                # Shed without executing if the deadline passed while
                # queued (or between retry attempts).
                request.token.check()
                result = self._session.execute(
                    request.query, request.mode, request.settings,
                    name=request.name, cancel=request.token)
            except QueryCancelledError as exc:
                self.metrics.count("cancelled")
                future.set_exception(exc)
                return
            except TransientError as exc:
                delay = self._retry_delay(tenant, request, attempt)
                if delay is None:
                    self.metrics.count("failed")
                    future.set_exception(exc)
                    return
                attempt += 1
                if delay > 0:
                    self._retry_sleep(delay)
                continue
            # lint: allow(broad-except-swallow) — the failure is not
            # swallowed: it is re-raised in the awaiting task through
            # future.set_exception; a worker thread must never die.
            except BaseException as exc:
                self.metrics.count("failed")
                future.set_exception(exc)
                return
            latency_ms = (time.perf_counter() - request.submitted_at) * 1e3
            self.metrics.count("completed")
            if result.from_result_cache:
                self.metrics.count("result_cache_hits")
            self.metrics.record_latency(tenant, latency_ms)
            future.set_result(result)
            return

    def _retry_delay(self, tenant: str, request: _ServingRequest,
                     attempt: int) -> Optional[float]:
        """Grant one retry (the backoff in seconds) or deny it (``None``).

        Denials that hit a configured limit — the attempt cap or the
        tenant's lifetime budget — count as ``retry_denied``; a ``None``
        policy or an already-cancelled token deny silently because no
        retry was ever on offer.
        """
        policy = self._retry_policy
        if policy is None or request.token.cancelled:
            return None
        if attempt >= policy.max_attempts:
            self.metrics.count("retry_denied")
            return None
        budget = policy.tenant_retry_budget
        if budget is not None:
            with self._retry_lock:
                used = self._retry_used.get(tenant, 0)
                if used >= budget:
                    self.metrics.count("retry_denied")
                    return None
                self._retry_used[tenant] = used + 1
        self.metrics.count("retried")
        return policy.delay(attempt, key=request.name)

    # -- lifecycle ----------------------------------------------------------

    @property
    def is_closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Shut the serving tier down deterministically (idempotent).

        Stops admissions, fails every still-queued request with
        :class:`~repro.errors.AdmissionError`, joins the worker threads and
        closes the serving session (the wrapped :class:`Database` itself
        stays open — the caller owns it).
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        dropped = self.queue.close()
        for _tenant, request in dropped:
            if request.future.set_running_or_notify_cancel():
                request.future.set_exception(
                    AdmissionError("serving tier closed before execution"))
                self.metrics.count("rejected")
        for thread in self._workers:
            thread.join()
        self._session.close()

    async def __aenter__(self) -> "AsyncDatabase":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        self.close()


class AsyncSession:
    """A tenant-bound handle on an :class:`AsyncDatabase`.

    Binds the tenant name plus optional default mode/settings/timeout, so
    request sites read like the sync API::

        dashboards = serving.session("dashboards", timeout=0.5)
        result = await dashboards.execute("select ...")
    """

    def __init__(self, serving: AsyncDatabase, tenant: str, *,
                 mode: Optional[OptimizerMode] = None,
                 settings: Optional[BfCboSettings] = None,
                 timeout: Optional[float] = None) -> None:
        self.serving = serving
        self.tenant = tenant
        self.mode = mode
        self.settings = settings
        self.timeout = timeout

    async def execute(self, query: QueryLike, *,
                      timeout: Optional[float] = None,
                      cancel: Optional[CancelToken] = None,
                      mode: Optional[OptimizerMode] = None,
                      settings: Optional[BfCboSettings] = None,
                      name: str = "query") -> "QueryResult":
        """Execute one query as this tenant (``await``-able)."""
        return await self.serving.execute_async(
            query, tenant=self.tenant,
            timeout=timeout if timeout is not None else self.timeout,
            cancel=cancel,
            mode=mode if mode is not None else self.mode,
            settings=settings if settings is not None else self.settings,
            name=name)

    #: ``execute_async`` and ``execute`` are the same awaitable call; both
    #: names exist so call sites can mirror either API generation.
    execute_async = execute

    async def execute_many(self, queries: Sequence[QueryLike], *,
                           timeout: Optional[float] = None,
                           mode: Optional[OptimizerMode] = None,
                           settings: Optional[BfCboSettings] = None,
                           name: str = "batch",
                           return_errors: bool = True,
                           ) -> "List[Union[QueryResult, BaseException]]":
        """Concurrent batch as this tenant (see
        :meth:`AsyncDatabase.execute_many`)."""
        return await self.serving.execute_many(
            queries, tenant=self.tenant,
            timeout=timeout if timeout is not None else self.timeout,
            mode=mode if mode is not None else self.mode,
            settings=settings if settings is not None else self.settings,
            name=name, return_errors=return_errors)

    @property
    def in_flight(self) -> int:
        """This tenant's currently executing request count."""
        return self.serving.queue.in_flight(self.tenant)


__all__ = ["AsyncDatabase", "AsyncSession", "DEFAULT_TENANT",
           "DEFAULT_WORKERS"]
