"""Serving metrics: latency percentiles and request-outcome counters.

The serving tier's observability surface.  A :class:`LatencyRecorder` keeps a
bounded reservoir of per-request latencies and derives p50/p95/p99 on demand
(nearest-rank over the sorted sample — no numpy dependency, the recorder sits
on the request hot path).  :class:`ServingMetrics` aggregates one global
recorder, one per tenant, and the outcome counters
(admitted/rejected/completed/cancelled/failed/retried + result-cache hits),
snapshot
via :meth:`ServingMetrics.snapshot` as plain frozen dataclasses that
benchmarks serialise straight into ``BENCH_serving_latency.json``.

Everything here is thread-safe: worker threads record while the event loop
snapshots.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional

#: Latency samples kept per recorder; recording beyond the cap drops the
#: oldest sample (a sliding window, so long-running servers report recent
#: behaviour rather than boot-time history).
DEFAULT_RESERVOIR = 4096


def percentile(samples: List[float], q: float) -> float:
    """Nearest-rank percentile of ``samples`` (``q`` in [0, 100]).

    The conventional serving-latency definition: the smallest sample such
    that at least ``q``% of the distribution is at or below it.  Raises
    ``ValueError`` on an empty sample set — a latency report over zero
    requests is a caller bug, not a zero.
    """
    if not samples:
        raise ValueError("percentile of an empty sample set")
    if not 0.0 <= q <= 100.0:
        raise ValueError("percentile q must be in [0, 100], got %r" % q)
    ordered = sorted(samples)
    if q == 0.0:
        return ordered[0]
    rank = max(1, -(-len(ordered) * q // 100))  # ceil without floats
    return ordered[int(rank) - 1]


@dataclass(frozen=True)
class LatencySnapshot:
    """Percentile summary of one recorder at one instant."""

    count: int
    p50_ms: float
    p95_ms: float
    p99_ms: float
    max_ms: float

    def as_dict(self) -> Dict[str, float]:
        """JSON-ready mapping (used by the benchmark artifacts)."""
        return {"count": self.count, "p50_ms": self.p50_ms,
                "p95_ms": self.p95_ms, "p99_ms": self.p99_ms,
                "max_ms": self.max_ms}


#: The all-zero snapshot reported before any request completed.
EMPTY_SNAPSHOT = LatencySnapshot(count=0, p50_ms=0.0, p95_ms=0.0,
                                 p99_ms=0.0, max_ms=0.0)


class LatencyRecorder:
    """Thread-safe sliding-window latency reservoir with percentiles."""

    def __init__(self, reservoir: int = DEFAULT_RESERVOIR) -> None:
        if reservoir <= 0:
            raise ValueError("reservoir must be positive, got %r" % reservoir)
        self._reservoir = reservoir
        self._samples: List[float] = []
        self._count = 0
        self._lock = threading.Lock()

    def record(self, latency_ms: float) -> None:
        """Add one request latency (milliseconds)."""
        with self._lock:
            self._count += 1
            self._samples.append(latency_ms)
            if len(self._samples) > self._reservoir:
                del self._samples[:len(self._samples) - self._reservoir]

    @property
    def count(self) -> int:
        """Lifetime number of recorded requests (beyond the window)."""
        with self._lock:
            return self._count

    def snapshot(self) -> LatencySnapshot:
        """Percentiles over the current window (zeros when empty)."""
        with self._lock:
            samples = list(self._samples)
            count = self._count
        if not samples:
            return EMPTY_SNAPSHOT
        return LatencySnapshot(
            count=count,
            p50_ms=percentile(samples, 50),
            p95_ms=percentile(samples, 95),
            p99_ms=percentile(samples, 99),
            max_ms=max(samples))


@dataclass(frozen=True)
class ServingSnapshot:
    """One consistent view of the serving tier's counters and latencies."""

    admitted: int
    rejected: int
    completed: int
    cancelled: int
    failed: int
    result_cache_hits: int
    latency: LatencySnapshot
    tenants: Dict[str, LatencySnapshot]
    #: Transient-failure retries granted (each re-execution counts one).
    retries: int = 0
    #: Retries refused because the attempt cap or tenant budget was spent.
    retries_denied: int = 0

    @property
    def in_flight_or_queued(self) -> int:
        """Requests admitted but not yet finished at snapshot time."""
        return self.admitted - self.completed - self.cancelled - self.failed


class ServingMetrics:
    """Counters plus global and per-tenant latency recorders."""

    def __init__(self, reservoir: int = DEFAULT_RESERVOIR) -> None:
        self._reservoir = reservoir
        self._latency = LatencyRecorder(reservoir)
        self._tenant_latency: Dict[str, LatencyRecorder] = {}
        self._counters = {"admitted": 0, "rejected": 0, "completed": 0,
                          "cancelled": 0, "failed": 0, "result_cache_hits": 0,
                          "retried": 0, "retry_denied": 0}
        self._lock = threading.Lock()

    def count(self, counter: str, delta: int = 1) -> None:
        """Bump one outcome counter (``KeyError`` on unknown names)."""
        with self._lock:
            if counter not in self._counters:
                raise KeyError("unknown serving counter %r" % counter)
            self._counters[counter] += delta

    def record_latency(self, tenant: str, latency_ms: float) -> None:
        """Record one completed request's latency, globally and per tenant."""
        self._latency.record(latency_ms)
        with self._lock:
            recorder = self._tenant_latency.get(tenant)
            if recorder is None:
                recorder = LatencyRecorder(self._reservoir)
                self._tenant_latency[tenant] = recorder
        recorder.record(latency_ms)

    def snapshot(self) -> ServingSnapshot:
        """Freeze counters and percentiles into one consistent view."""
        with self._lock:
            counters = dict(self._counters)
            tenants = dict(self._tenant_latency)
        return ServingSnapshot(
            admitted=counters["admitted"],
            rejected=counters["rejected"],
            completed=counters["completed"],
            cancelled=counters["cancelled"],
            failed=counters["failed"],
            result_cache_hits=counters["result_cache_hits"],
            retries=counters["retried"],
            retries_denied=counters["retry_denied"],
            latency=self._latency.snapshot(),
            tenants={name: recorder.snapshot()
                     for name, recorder in sorted(tenants.items())})


__all__ = ["DEFAULT_RESERVOIR", "EMPTY_SNAPSHOT", "LatencyRecorder",
           "LatencySnapshot", "ServingMetrics", "ServingSnapshot",
           "percentile"]
