"""Per-tenant quotas and the weighted-fair-queueing bookkeeping.

A :class:`TenantQuota` is the per-tenant policy knob set of the admission
queue: how many of the tenant's queries may run concurrently
(``max_concurrency``), how much of the shared dequeue bandwidth it gets
relative to other tenants (``weight``), and how deep its private backlog may
grow before submissions shed (``max_queued``, bounding how much of the global
queue one tenant can occupy — the anti-starvation knob on the *admission*
side).

:class:`TenantState` is the queue's mutable bookkeeping per tenant: the FIFO
backlog, the in-flight count, and the tenant's **virtual finish time** for
weighted fair queueing.  The scheduler always dequeues the *eligible* tenant
(non-empty backlog, in-flight below quota) with the smallest virtual time;
serving one request advances the tenant's virtual time by ``1 / weight``.  A
tenant with weight 2 therefore drains twice as fast as a weight-1 tenant
under contention, and a tenant that floods its backlog cannot starve others:
its virtual time races ahead while everyone else's stays small.

All mutation happens under the admission queue's lock — this module holds no
locks of its own.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, Tuple


@dataclass(frozen=True)
class TenantQuota:
    """Admission policy for one tenant.

    Args:
        max_concurrency: Queries of this tenant allowed in flight at once
            (must be >= 1; admission never lets a tenant monopolise all
            workers unless its quota says so).
        weight: Share of dequeue bandwidth under contention, relative to
            other tenants (> 0; 2.0 drains twice as fast as 1.0).
        max_queued: Cap on this tenant's *queued* (not yet running)
            requests; submissions beyond it raise
            :class:`~repro.errors.AdmissionError` even when the global
            queue still has room.  ``None`` leaves only the global depth
            bound.
    """

    max_concurrency: int = 4
    weight: float = 1.0
    max_queued: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1, got %r"
                             % self.max_concurrency)
        if not self.weight > 0:
            raise ValueError("weight must be positive, got %r" % self.weight)
        if self.max_queued is not None and self.max_queued < 1:
            raise ValueError("max_queued must be >= 1 or None, got %r"
                             % self.max_queued)


#: The quota tenants get when the serving tier was not configured for them.
DEFAULT_QUOTA = TenantQuota()


class TenantState:
    """Mutable WFQ bookkeeping for one tenant (guarded by the queue lock)."""

    def __init__(self, name: str, quota: TenantQuota) -> None:
        self.name = name
        self.quota = quota
        #: FIFO backlog of not-yet-dequeued requests.
        self.backlog: Deque[object] = deque()
        #: Requests dequeued and not yet released.
        self.in_flight = 0
        #: WFQ virtual finish time; the scheduler serves the smallest.
        self.virtual_time = 0.0

    @property
    def eligible(self) -> bool:
        """True when the scheduler may dequeue from this tenant now."""
        return bool(self.backlog) and \
            self.in_flight < self.quota.max_concurrency

    @property
    def queue_full(self) -> bool:
        """True when the tenant's private backlog cap is reached."""
        return self.quota.max_queued is not None and \
            len(self.backlog) >= self.quota.max_queued

    def charge(self, global_virtual_time: float) -> None:
        """Advance virtual time for one dequeued request.

        An idle tenant's clock is first caught up to the global virtual
        time — standard WFQ: idleness earns no credit, so a tenant cannot
        bank bandwidth while away and then burst ahead of everyone.
        """
        base = max(self.virtual_time, global_virtual_time)
        self.virtual_time = base + 1.0 / self.quota.weight

    def sort_key(self) -> Tuple[float, str]:
        """Deterministic scheduling order: virtual time, then name."""
        return (self.virtual_time, self.name)


__all__ = ["DEFAULT_QUOTA", "TenantQuota", "TenantState"]
