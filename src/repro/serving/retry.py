"""Retry policy for the serving tier: bounded, deterministic, budgeted.

The serving tier retries exactly one class of failure: *transient* errors
(:class:`~repro.errors.TransientError` — worker crashes, shared-memory
pressure, injected faults), which by contract leave no externalized state
behind.  Permanent errors (:class:`~repro.errors.SqlError`,
:class:`~repro.errors.PlanningError`, :class:`~repro.errors.ExecutionError`
proper) and cancellation are never retried — re-running a query that failed
deterministically just doubles the damage, and retrying a cancelled query
defeats the point of cancelling it.

:class:`RetryPolicy` is pure decision logic, deliberately free of clocks and
randomness at call time:

* **Bounded attempts** — ``max_attempts`` caps total executions per request
  (the first attempt counts; ``max_attempts=3`` means at most two retries).
* **Deterministic backoff** — :meth:`delay` computes exponential backoff
  with jitter derived from ``crc32(seed, key, attempt)`` rather than a
  global RNG, so a replay of the same request sequence sleeps the same
  schedule (the same discipline as :class:`~repro.faults.FaultPlan`).
* **Per-tenant budgets** — ``tenant_retry_budget`` caps the *total* retries
  any one tenant may consume over the server's lifetime.  A tenant whose
  queries keep hitting transient faults degrades to fail-fast instead of
  amplifying a sick backend with retry storms; denials are counted in
  ``snapshot().retries_denied``.

The policy object is immutable configuration; the mutable budget ledger
lives in :class:`AsyncDatabase`, which is the component that knows about
tenants.  See ``docs/robustness.md`` for how retries compose with the
executor's own worker-crash recovery (inner recovery first, serving retry
as the outer backstop).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from random import Random
from typing import Optional

#: Total executions allowed per request (first attempt included).
DEFAULT_MAX_ATTEMPTS = 3

#: Base backoff before the first retry, seconds.
DEFAULT_BACKOFF_BASE_S = 0.01


@dataclass(frozen=True)
class RetryPolicy:
    """Immutable retry configuration for :class:`AsyncDatabase`.

    Args:
        max_attempts: Total executions per request, >= 1.  ``1`` disables
            retries while keeping the accounting surface.
        backoff_base_s: Sleep before the first retry; each further retry
            multiplies it by ``multiplier``.
        multiplier: Exponential backoff factor, >= 1.
        jitter: Fraction of the backoff added as deterministic jitter in
            ``[0, jitter)`` — ``0.5`` means each delay lands in
            ``[base, 1.5 * base)``.  ``0`` disables jitter.
        seed: Seeds the per-(request, attempt) jitter stream, mirroring
            :class:`~repro.faults.FaultPlan` determinism.
        tenant_retry_budget: Lifetime cap on retries per tenant; ``None``
            means unbudgeted.  Exhausted budgets fail fast and count as
            ``retries_denied``.
    """

    max_attempts: int = DEFAULT_MAX_ATTEMPTS
    backoff_base_s: float = DEFAULT_BACKOFF_BASE_S
    multiplier: float = 2.0
    jitter: float = 0.5
    seed: int = 0
    tenant_retry_budget: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1, got %r"
                             % self.max_attempts)
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be >= 0, got %r"
                             % self.backoff_base_s)
        if self.multiplier < 1:
            raise ValueError("multiplier must be >= 1, got %r"
                             % self.multiplier)
        if self.jitter < 0:
            raise ValueError("jitter must be >= 0, got %r" % self.jitter)
        if self.tenant_retry_budget is not None \
                and self.tenant_retry_budget < 0:
            raise ValueError("tenant_retry_budget must be >= 0, got %r"
                             % self.tenant_retry_budget)

    def delay(self, attempt: int, key: str = "") -> float:
        """Backoff before retry number ``attempt`` (1-based), seconds.

        Deterministic: the jitter stream is seeded from
        ``(seed, key, attempt)`` via CRC-32 — never Python's salted
        ``hash()`` — so the same request name replays the same schedule
        across processes.
        """
        if attempt < 1:
            raise ValueError("attempt must be >= 1, got %r" % attempt)
        base = self.backoff_base_s * (self.multiplier ** (attempt - 1))
        if self.jitter == 0 or base == 0:
            return base
        token = ("%d:%s:%d" % (self.seed, key, attempt)).encode("utf-8")
        rng = Random(zlib.crc32(token))
        return base * (1.0 + self.jitter * rng.random())


__all__ = ["DEFAULT_BACKOFF_BASE_S", "DEFAULT_MAX_ATTEMPTS", "RetryPolicy"]
