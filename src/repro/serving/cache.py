"""The shared result cache: identical hot queries cost one execution.

Every execution in this engine is deterministic — parallelism is bit-identical
to serial and the simulated metrics are derived from actual row counts — so a
query's :class:`~repro.executor.runtime.ExecutionResult` is a pure function of
``(bound-query fingerprint, optimizer mode, plan-relevant settings, catalog
state)``.  The cache key is that tuple with the catalog state split by how it
changes: two sessions differing only in parallel knobs share one cached
result, and the key's catalog component is the database's *full-invalidation
epoch* — bumped on any out-of-band catalog mutation, so every older key
becomes unreachable even before ``evict_all`` runs.

Table **re-registration** deliberately does not bump the epoch: it rides
PR 3's per-table machinery instead.  Entries carry the set of tables the
query reads, and re-registering one table evicts exactly the dependent
entries (:meth:`ResultCache.evict_table`) while results over other tables
stay hot — the targeted-invalidation behaviour the serving benchmark gates
on.  Stored batches are frozen
(:meth:`~repro.executor.batch.Batch.freeze`) because a cached result is
shared by every future hit — a caller mutating its arrays would otherwise
corrupt every other caller's view.

The cache is owned by :class:`repro.api.Database` (``result_cache_size``
knob, counters in ``db.cache_stats()``) and consulted by both the sync
session path and the async serving tier.
"""

from __future__ import annotations

from typing import FrozenSet, Hashable, Optional, Tuple

from ..cache import LruCache
from ..executor.runtime import ExecutionResult


class ResultCache:
    """Bounded LRU over finished executions with per-table invalidation.

    ``max_entries <= 0`` disables the cache: lookups miss, stores are
    discarded — callers never special-case it.  Thread-safe (the underlying
    :class:`~repro.cache.LruCache` locks internally), so any number of
    serving workers can share one instance.

    ``max_bytes`` bounds the cache by what actually occupies memory: every
    stored execution is weighted by its batch's resident bytes
    (:attr:`Batch.nbytes <repro.executor.batch.Batch.nbytes>`) and eviction
    drops least-recently-used entries until the *bytes* fit — a thousand
    tiny aggregates and three huge scans are charged what they really cost,
    not one entry each.  ``None`` keeps the entry-count-only bound.
    """

    def __init__(self, max_entries: int = 256,
                 max_bytes: Optional[int] = None) -> None:
        self._cache = LruCache(max_entries, max_bytes=max_bytes)

    @staticmethod
    def key(fingerprint: str, mode: object, settings: object,
            catalog_epoch: int) -> Tuple[Hashable, ...]:
        """The canonical result-cache key for one request.

        ``settings`` should be the *plan-relevant* resolved settings (the
        same projection the plan cache keys on): execution is bit-identical
        across parallel knobs, so sessions differing only in those share
        one cached result.  ``catalog_epoch`` is the owner's
        full-invalidation counter — bumped on out-of-band catalog changes
        (making all older keys unreachable), *not* on table registration,
        which invalidates via :meth:`evict_table` so unrelated entries
        stay hot.
        """
        return (fingerprint, mode, settings, catalog_epoch)

    @property
    def enabled(self) -> bool:
        """True when the cache stores anything at all."""
        return self._cache.max_entries > 0

    def __len__(self) -> int:
        return len(self._cache)

    # -- the serving path ---------------------------------------------------

    def lookup(self, key: Hashable) -> Optional[ExecutionResult]:
        """The cached execution for ``key`` (counting hit/miss), if any."""
        entry = self._cache.lookup(key)
        return entry[0] if entry is not None else None

    def store(self, key: Hashable, execution: ExecutionResult,
              tables: FrozenSet[str]) -> None:
        """Cache one finished execution, freezing its batch.

        ``tables`` is the lower-cased set of table names the query read —
        the per-table invalidation index.  Freezing happens on *store* so
        the very first caller already holds the same read-only view later
        hits receive (shared data has one mutability story, not two).
        """
        if not self.enabled:
            return
        execution.batch.freeze()
        self._cache.store(key, (execution, tables),
                          nbytes=execution.batch.nbytes)

    # -- invalidation -------------------------------------------------------

    def evict_table(self, table_name: str) -> int:
        """Drop exactly the entries whose query reads ``table_name``."""
        key = table_name.lower()
        return self._cache.evict_if(lambda _, entry: key in entry[1])

    def evict_all(self) -> int:
        """Drop every entry (out-of-band catalog change), keep counters."""
        return self._cache.evict_all()

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        self._cache.clear()

    # -- counters -----------------------------------------------------------

    @property
    def hits(self) -> int:
        return self._cache.hits

    @property
    def misses(self) -> int:
        return self._cache.misses

    @property
    def evictions(self) -> int:
        """Entries dropped by invalidation (not LRU-capacity replacement)."""
        return self._cache.evictions

    @property
    def resident_bytes(self) -> int:
        """Batch bytes currently held by the cached executions."""
        return self._cache.resident_bytes


__all__ = ["ResultCache"]
