"""Experiment harnesses reproducing every table and figure of the paper."""

from .cardinality_mae import MaeResult, run_cardinality_mae
from .case_studies import (
    CaseStudyResult,
    run_case_study,
    run_q7_case_study,
    run_q12_case_study,
)
from .delta_semantics import DeltaSemanticsResult, run_delta_semantics
from .enumeration_latency import (
    EnumerationLatencyResult,
    run_enumeration_latency,
)
from .naive_blowup import BlowupResult, run_naive_blowup
from .planner_latency import PlannerLatencyResult, run_planner_latency
from .report import QueryRun, QueryRunner, format_table, percent_reduction, scaled_settings
from .running_example import RunningExampleResult, run_running_example
from .tpch_suite import SuiteResult, SuiteRow, run_tpch_suite

__all__ = [
    "BlowupResult",
    "CaseStudyResult",
    "DeltaSemanticsResult",
    "EnumerationLatencyResult",
    "MaeResult",
    "PlannerLatencyResult",
    "QueryRun",
    "QueryRunner",
    "RunningExampleResult",
    "SuiteResult",
    "SuiteRow",
    "format_table",
    "percent_reduction",
    "run_cardinality_mae",
    "run_case_study",
    "run_delta_semantics",
    "run_enumeration_latency",
    "run_naive_blowup",
    "run_planner_latency",
    "run_q12_case_study",
    "run_q7_case_study",
    "run_running_example",
    "run_tpch_suite",
    "scaled_settings",
]
