"""Experiment E7: cardinality-estimation accuracy (Section 4.2).

The paper reports that BF-CBO's intermediate-node cardinality estimates have a
mean absolute error of 5.3e6 versus 2.5e7 for BF-Post — a 78.8% improvement —
because BF-CBO revises the scan estimates of Bloom-filtered tables while
BF-Post leaves the Bloom-filter-oblivious estimates in place.  This experiment
executes every analysed query under both modes, compares each operator's
estimated row count with the observed row count, and aggregates the absolute
errors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..core.optimizer import OptimizerMode
from ..tpch.workload import TpchWorkload
from .report import QueryRunner, format_table, percent_reduction


@dataclass
class MaeRow:
    """Per-query mean absolute estimation error under both modes."""

    query: str
    bf_post_mae: float
    bf_cbo_mae: float


@dataclass
class MaeResult:
    """The Section 4.2 cardinality-accuracy comparison."""

    rows: List[MaeRow] = field(default_factory=list)

    @property
    def overall_bf_post_mae(self) -> float:
        """MAE pooled over all operators of all queries (BF-Post)."""
        return (sum(r.bf_post_mae for r in self.rows) / len(self.rows)
                if self.rows else 0.0)

    @property
    def overall_bf_cbo_mae(self) -> float:
        """MAE pooled over all operators of all queries (BF-CBO)."""
        return (sum(r.bf_cbo_mae for r in self.rows) / len(self.rows)
                if self.rows else 0.0)

    @property
    def improvement_percent(self) -> float:
        """% MAE reduction of BF-CBO over BF-Post (paper: 78.8%)."""
        return percent_reduction(self.overall_bf_post_mae,
                                 self.overall_bf_cbo_mae)

    def to_text(self) -> str:
        headers = ["Q#", "BF-Post MAE", "BF-CBO MAE"]
        rows = [[r.query, "%.1f" % r.bf_post_mae, "%.1f" % r.bf_cbo_mae]
                for r in self.rows]
        rows.append(["mean", "%.1f" % self.overall_bf_post_mae,
                     "%.1f" % self.overall_bf_cbo_mae])
        text = format_table(headers, rows,
                            title="Cardinality estimation MAE (Section 4.2)")
        return text + "\nBF-CBO improvement: %.1f%%" % self.improvement_percent


def run_cardinality_mae(workload: Optional[TpchWorkload] = None,
                        scale_factor: float = 0.01,
                        query_numbers: Optional[List[int]] = None) -> MaeResult:
    """Compare estimation accuracy of BF-Post and BF-CBO plans."""
    workload = workload or TpchWorkload.generate(scale_factor,
                                                 query_numbers=query_numbers)
    runner = QueryRunner(workload.catalog, scale_factor=workload.scale_factor)
    result = MaeResult()
    numbers = query_numbers if query_numbers is not None else workload.query_numbers
    for number in numbers:
        query = workload.query(number)
        bf_post = runner.run(query, OptimizerMode.BF_POST)
        bf_cbo = runner.run(query, OptimizerMode.BF_CBO)
        result.rows.append(MaeRow(query=query.name,
                                  bf_post_mae=bf_post.cardinality_mae,
                                  bf_cbo_mae=bf_cbo.cardinality_mae))
    return result
