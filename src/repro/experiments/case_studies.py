"""Experiments E3 and E5: the Q12 (Figure 1) and Q7 (Figure 6) case studies.

At the paper's SF100 cardinalities (statistics-only catalog) the case studies
compare the join order, the exchange strategy and the number of Bloom filters
chosen by BF-Post and BF-CBO; at a small materialised scale factor they also
execute both plans and report observed per-operator row counts, which is the
information Figures 1 and 6 annotate on their plan diagrams.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.explain import bloom_filter_summary, explain, join_order_summary
from ..core.optimizer import OptimizationResult, OptimizerMode
from ..tpch.workload import TpchWorkload
from .report import QueryRun, QueryRunner


@dataclass
class CaseStudyResult:
    """Plan comparison for one query under BF-Post vs BF-CBO."""

    query_name: str
    scale_factor: float
    bf_post: QueryRun = None
    bf_cbo: QueryRun = None

    @property
    def bf_post_join_order(self) -> List[str]:
        return join_order_summary(self.bf_post.optimization.join_plan)

    @property
    def bf_cbo_join_order(self) -> List[str]:
        return join_order_summary(self.bf_cbo.optimization.join_plan)

    @property
    def plan_changed(self) -> bool:
        """True when BF-CBO chose a different join order than BF-Post."""
        return self.bf_post_join_order != self.bf_cbo_join_order

    @property
    def bf_post_filters(self) -> int:
        return self.bf_post.num_bloom_filters

    @property
    def bf_cbo_filters(self) -> int:
        return self.bf_cbo.num_bloom_filters

    @property
    def latency_improvement(self) -> Optional[float]:
        """% latency reduction of BF-CBO over BF-Post when both executed."""
        if self.bf_post.simulated_latency and self.bf_cbo.simulated_latency:
            return 100.0 * (self.bf_post.simulated_latency
                            - self.bf_cbo.simulated_latency) \
                / self.bf_post.simulated_latency
        return None

    def to_text(self) -> str:
        lines = ["Case study %s (scale factor %s)" % (self.query_name,
                                                      self.scale_factor)]
        lines.append("\nBF-Post plan (%d Bloom filters):" % self.bf_post_filters)
        actuals = (self.bf_post.execution.metrics.actual_rows_by_node()
                   if self.bf_post.execution else None)
        lines.append(explain(self.bf_post.optimization.plan, actuals))
        lines.append("\nBF-CBO plan (%d Bloom filters):" % self.bf_cbo_filters)
        actuals = (self.bf_cbo.execution.metrics.actual_rows_by_node()
                   if self.bf_cbo.execution else None)
        lines.append(explain(self.bf_cbo.optimization.plan, actuals))
        lines.append("\nBloom filters applied by BF-CBO:")
        lines.extend("  " + line for line in
                     bloom_filter_summary(self.bf_cbo.optimization.plan))
        if self.latency_improvement is not None:
            lines.append("\nLatency improvement of BF-CBO over BF-Post: %.1f%%"
                         % self.latency_improvement)
        return "\n".join(lines)


def run_case_study(query_number: int,
                   workload: Optional[TpchWorkload] = None,
                   scale_factor: float = 0.02,
                   execute: bool = True) -> CaseStudyResult:
    """Run one case study (Figure 1 uses query 12, Figure 6 uses query 7)."""
    if workload is None:
        workload = (TpchWorkload.generate(scale_factor,
                                          query_numbers=[query_number])
                    if execute else
                    TpchWorkload.statistics_only(scale_factor,
                                                 query_numbers=[query_number]))
    runner = QueryRunner(workload.catalog, scale_factor=workload.scale_factor)
    query = workload.query(query_number)
    method = runner.run if (execute and workload.has_data) else runner.plan
    result = CaseStudyResult(query_name=query.name,
                             scale_factor=workload.scale_factor)
    result.bf_post = method(query, OptimizerMode.BF_POST)
    result.bf_cbo = method(query, OptimizerMode.BF_CBO)
    return result


def run_q12_case_study(**kwargs) -> CaseStudyResult:
    """Figure 1: join-input reversal of TPC-H Q12."""
    return run_case_study(12, **kwargs)


def run_q7_case_study(**kwargs) -> CaseStudyResult:
    """Figure 6: predicate transfer through five Bloom filters in TPC-H Q7."""
    return run_case_study(7, **kwargs)
