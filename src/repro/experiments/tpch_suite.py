"""Experiment E1/E2: the TPC-H latency suite (Table 2, Table 3, Figure 5).

For every analysed TPC-H query the suite plans and executes the query under
three modes — No-BF, BF-Post and BF-CBO — and reports, per query:

* the simulated latency normalised to the No-BF run (the paper's Figure 5 /
  Table 2 "normalized query latency" columns),
* the percentage reduction of BF-CBO over BF-Post,
* the planner latencies of BF-Post and BF-CBO (Table 2's right-hand columns),
* whether BF-CBO chose a different join order than BF-Post.

Running the suite with ``heuristic7=True`` reproduces Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.explain import join_order_summary
from ..core.heuristics import BfCboSettings
from ..core.optimizer import OptimizerMode
from ..tpch.workload import TpchWorkload
from .report import QueryRun, QueryRunner, format_table, percent_reduction


@dataclass
class SuiteRow:
    """One row of the Table 2 / Table 3 reproduction."""

    query: str
    no_bf_latency: float
    bf_post_latency: float
    bf_cbo_latency: float
    bf_post_planner_ms: float
    bf_cbo_planner_ms: float
    bf_post_filters: int
    bf_cbo_filters: int
    plan_changed: bool

    @property
    def bf_post_normalized(self) -> float:
        return self.bf_post_latency / self.no_bf_latency if self.no_bf_latency else 1.0

    @property
    def bf_cbo_normalized(self) -> float:
        return self.bf_cbo_latency / self.no_bf_latency if self.no_bf_latency else 1.0

    @property
    def percent_improvement(self) -> float:
        """% latency reduction of BF-CBO relative to BF-Post (paper's "%↓")."""
        return percent_reduction(self.bf_post_latency, self.bf_cbo_latency)


@dataclass
class SuiteResult:
    """The full Table 2 / Table 3 reproduction."""

    rows: List[SuiteRow] = field(default_factory=list)
    heuristic7: bool = False
    scale_factor: float = 0.0

    # -- aggregates ----------------------------------------------------------

    @property
    def total_no_bf(self) -> float:
        return sum(row.no_bf_latency for row in self.rows)

    @property
    def total_bf_post(self) -> float:
        return sum(row.bf_post_latency for row in self.rows)

    @property
    def total_bf_cbo(self) -> float:
        return sum(row.bf_cbo_latency for row in self.rows)

    @property
    def overall_bf_post_reduction(self) -> float:
        """Reduction of BF-Post vs No-BF (the paper reports 28.8%)."""
        return percent_reduction(self.total_no_bf, self.total_bf_post)

    @property
    def overall_bf_cbo_reduction(self) -> float:
        """Reduction of BF-CBO vs No-BF (the paper reports 52.2%)."""
        return percent_reduction(self.total_no_bf, self.total_bf_cbo)

    @property
    def overall_improvement_over_post(self) -> float:
        """Reduction of BF-CBO vs BF-Post (the paper reports 32.8%)."""
        return percent_reduction(self.total_bf_post, self.total_bf_cbo)

    @property
    def total_bf_post_planner_ms(self) -> float:
        return sum(row.bf_post_planner_ms for row in self.rows)

    @property
    def total_bf_cbo_planner_ms(self) -> float:
        return sum(row.bf_cbo_planner_ms for row in self.rows)

    # -- figure 5 series ----------------------------------------------------------

    def figure5_series(self) -> Dict[str, List[float]]:
        """Normalised latencies per query, the two bar series of Figure 5."""
        return {
            "queries": [row.query for row in self.rows],
            "bf_post": [row.bf_post_normalized for row in self.rows],
            "bf_cbo": [row.bf_cbo_normalized for row in self.rows],
        }

    # -- rendering ------------------------------------------------------------------

    def to_text(self) -> str:
        headers = ["Q#", "BF-Post", "BF-CBO", "%down", "planner BF-Post (ms)",
                   "planner BF-CBO (ms)", "plan changed"]
        rows = []
        for row in self.rows:
            rows.append([row.query, "%.3f" % row.bf_post_normalized,
                         "%.3f" % row.bf_cbo_normalized,
                         "%.1f" % row.percent_improvement,
                         "%.1f" % row.bf_post_planner_ms,
                         "%.1f" % row.bf_cbo_planner_ms,
                         "yes" if row.plan_changed else ""])
        rows.append(["total",
                     "%.3f" % (self.total_bf_post / self.total_no_bf
                               if self.total_no_bf else 1.0),
                     "%.3f" % (self.total_bf_cbo / self.total_no_bf
                               if self.total_no_bf else 1.0),
                     "%.1f" % self.overall_improvement_over_post,
                     "%.1f" % self.total_bf_post_planner_ms,
                     "%.1f" % self.total_bf_cbo_planner_ms, ""])
        title = ("TPC-H query latencies (normalised to No-BF), Heuristic 7 %s"
                 % ("enabled" if self.heuristic7 else "disabled"))
        return format_table(headers, rows, title=title)


def run_tpch_suite(workload: Optional[TpchWorkload] = None,
                   scale_factor: float = 0.01,
                   heuristic7: bool = False,
                   query_numbers: Optional[List[int]] = None,
                   degree_of_parallelism: int = 48) -> SuiteResult:
    """Run the Table 2 (or, with ``heuristic7``, Table 3) experiment."""
    workload = workload or TpchWorkload.generate(scale_factor,
                                                 query_numbers=query_numbers)
    runner = QueryRunner(workload.catalog, scale_factor=workload.scale_factor,
                         degree_of_parallelism=degree_of_parallelism)
    settings = (BfCboSettings.with_heuristic7() if heuristic7
                else BfCboSettings.paper_defaults())
    result = SuiteResult(heuristic7=heuristic7,
                         scale_factor=workload.scale_factor)
    numbers = query_numbers if query_numbers is not None else workload.query_numbers
    for number in numbers:
        query = workload.query(number)
        no_bf = runner.run(query, OptimizerMode.NO_BF)
        bf_post = runner.run(query, OptimizerMode.BF_POST)
        bf_cbo = runner.run(query, OptimizerMode.BF_CBO, settings)
        changed = (join_order_summary(bf_post.optimization.join_plan)
                   != join_order_summary(bf_cbo.optimization.join_plan))
        result.rows.append(SuiteRow(
            query=query.name,
            no_bf_latency=no_bf.simulated_latency,
            bf_post_latency=bf_post.simulated_latency,
            bf_cbo_latency=bf_cbo.simulated_latency,
            bf_post_planner_ms=bf_post.planning_time_ms,
            bf_cbo_planner_ms=bf_cbo.planning_time_ms,
            bf_post_filters=bf_post.num_bloom_filters,
            bf_cbo_filters=bf_cbo.num_bloom_filters,
            plan_changed=changed))
    return result
