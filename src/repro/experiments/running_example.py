"""Experiment E4: the running example of Section 3 (Examples 3.1–3.4, Figure 4).

The example query is::

    SELECT * FROM t1, t2, t3
    WHERE t1.c2 = t2.c1 AND t2.c2 = t3.c1 AND t2.c3 < 100;

with estimated base cardinalities t1 = 600M, t2 (filtered) ≈ 807K, t3 = 1M and
``t2.c2`` a foreign key of ``t3.c1``.  This module builds a statistics-only
catalog matching those numbers, exposes each BF-CBO step (candidate marking, Δ
collection, sub-plan costing) for inspection, and compares the final BF-Post
and BF-CBO plans the way Figure 4 does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List

from ..core.bfcbo import TwoPhaseBloomOptimizer
from ..core.candidates import BloomFilterCandidate, mark_bloom_filter_candidates
from ..core.cardinality import CardinalityEstimator
from ..core.cost import CostModel
from ..core.explain import explain, join_order_summary
from ..core.expressions import ColumnRef, Comparison, ComparisonOp, Literal
from ..core.heuristics import BfCboSettings
from ..core.optimizer import OptimizationResult, Optimizer, OptimizerMode
from ..core.query import BaseRelation, JoinClause, QueryBlock
from ..storage.catalog import Catalog
from ..storage.schema import ForeignKey, make_schema
from ..storage.statistics import synthetic_statistics
from ..storage.types import INT64

#: Paper cardinalities: t1 600M rows, t2 807K rows after its local predicate,
#: t3 1M rows.  The t2 base table and the c3 histogram are arranged so the
#: filtered estimate lands close to 807K.
T1_ROWS = 600_000_000
T2_ROWS = 8_070_000
T2_FILTER_SELECTIVITY = 0.1          # c3 < 100 over a 0..999 domain
T3_ROWS = 1_000_000


def build_catalog() -> Catalog:
    """Statistics-only catalog matching the running example's cardinalities."""
    catalog = Catalog()
    t1 = make_schema("t1", [("c1", INT64), ("c2", INT64)], primary_key=["c1"])
    t2 = make_schema("t2", [("c1", INT64), ("c2", INT64), ("c3", INT64)],
                     primary_key=["c1"],
                     foreign_keys=[ForeignKey("c2", "t3", "c1")])
    t3 = make_schema("t3", [("c1", INT64)], primary_key=["c1"])
    catalog.register_schema(t1, synthetic_statistics(
        "t1", T1_ROWS, {"c1": T1_ROWS, "c2": 22_000_000}))
    catalog.register_schema(t2, synthetic_statistics(
        "t2", T2_ROWS, {"c1": T2_ROWS, "c2": 770_000, "c3": 1_000},
        {"c3": (0.0, 999.0)}))
    catalog.register_schema(t3, synthetic_statistics(
        "t3", T3_ROWS, {"c1": T3_ROWS}))
    return catalog


def build_query() -> QueryBlock:
    """The three-table example query block."""
    return QueryBlock(
        relations=[BaseRelation("t1", "t1"), BaseRelation("t2", "t2"),
                   BaseRelation("t3", "t3")],
        join_clauses=[
            JoinClause(ColumnRef("t1", "c2"), ColumnRef("t2", "c1")),
            JoinClause(ColumnRef("t2", "c2"), ColumnRef("t3", "c1")),
        ],
        local_predicates={"t2": [Comparison(ComparisonOp.LT,
                                            ColumnRef("t2", "c3"),
                                            Literal(100))]},
        name="running-example")


@dataclass
class RunningExampleResult:
    """All artefacts of the Section 3 walk-through."""

    candidates: Dict[str, List[BloomFilterCandidate]]
    deltas: Dict[str, List[FrozenSet[str]]]
    bf_post: OptimizationResult = None
    bf_cbo: OptimizationResult = None

    @property
    def bf_post_join_order(self) -> List[str]:
        return join_order_summary(self.bf_post.join_plan)

    @property
    def bf_cbo_join_order(self) -> List[str]:
        return join_order_summary(self.bf_cbo.join_plan)

    def to_text(self) -> str:
        lines = ["Running example (Section 3)"]
        lines.append("\nBloom filter candidates (Example 3.1) and Δ lists (Example 3.2):")
        for alias, cands in sorted(self.candidates.items()):
            for cand in cands:
                lines.append("  %s.bfc: apply=%s build=%s Δ=%s"
                             % (alias, cand.apply_column, cand.build_column,
                                [sorted(d) for d in cand.deltas]))
        lines.append("\nBF-Post plan (Figure 4a):")
        lines.append(explain(self.bf_post.plan))
        lines.append("\nBF-CBO plan (Figure 4b):")
        lines.append(explain(self.bf_cbo.plan))
        return "\n".join(lines)


def run_running_example(settings: BfCboSettings = None) -> RunningExampleResult:
    """Execute every step of the Section 3 walk-through."""
    catalog = build_catalog()
    query = build_query()
    settings = settings or BfCboSettings.paper_defaults()

    estimator = CardinalityEstimator(catalog, query)
    two_phase = TwoPhaseBloomOptimizer(catalog, query, estimator, CostModel(),
                                       settings)
    candidates = mark_bloom_filter_candidates(query, estimator, settings,
                                              two_phase.join_graph)
    two_phase.first_phase(candidates)
    deltas = {alias: [frozenset(d) for cand in cands for d in cand.deltas]
              for alias, cands in candidates.items()}

    optimizer = Optimizer(catalog)
    bf_post = optimizer.optimize(query, OptimizerMode.BF_POST)
    bf_cbo = optimizer.optimize(query, OptimizerMode.BF_CBO, settings)
    return RunningExampleResult(candidates=candidates, deltas=deltas,
                                bf_post=bf_post, bf_cbo=bf_cbo)
