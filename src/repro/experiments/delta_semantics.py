"""Experiment E8: δ semantics (Figures 2 and 3).

Two conceptual properties of Bloom filter sub-plans are demonstrated on a
three-table micro-schema:

* **Figure 2** — the cardinality of ``R0`` with a Bloom filter built from
  ``R1`` depends on the build-side relation set: |R0 ⋉̂ R1| ≥ |R0 ⋉̂ (R1, R2)|
  whenever joining ``R2`` to ``R1`` removes distinct join keys.
* **Figure 3** — during the second bottom-up pass the join of a δ = {R1, R2}
  Bloom filter sub-plan with a sub-plan providing only ``R1`` is illegal,
  unless that inner sub-plan is itself a Bloom filter sub-plan whose pending δ
  covers the outstanding relation (the panel (c) exception).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Tuple

from ..core.cardinality import CardinalityEstimator
from ..core.cost import CostModel
from ..core.enumerator import JoinEnumerator, JoinPair
from ..core.expressions import ColumnRef, Comparison, ComparisonOp, Literal
from ..core.heuristics import BfCboSettings
from ..core.query import BaseRelation, JoinClause, QueryBlock
from ..storage.catalog import Catalog
from ..storage.schema import make_schema
from ..storage.statistics import synthetic_statistics
from ..storage.types import INT64


def build_micro_catalog() -> Catalog:
    """R0 (large), R1 (medium), R2 (small, filtered) joined in a chain."""
    catalog = Catalog()
    catalog.register_schema(
        make_schema("r0", [("a", INT64)], primary_key=[]),
        synthetic_statistics("r0", 50_000_000, {"a": 1_000_000}))
    catalog.register_schema(
        make_schema("r1", [("a", INT64), ("b", INT64)], primary_key=["a"]),
        synthetic_statistics("r1", 1_000_000, {"a": 1_000_000, "b": 200_000}))
    catalog.register_schema(
        make_schema("r2", [("b", INT64), ("attr", INT64)], primary_key=["b"]),
        synthetic_statistics("r2", 200_000, {"b": 200_000, "attr": 1_000},
                             {"attr": (0.0, 999.0)}))
    return catalog


def build_micro_query() -> QueryBlock:
    """``R0 ⋈ R1 ⋈ R2`` with a selective filter on R2."""
    return QueryBlock(
        relations=[BaseRelation("r0", "r0"), BaseRelation("r1", "r1"),
                   BaseRelation("r2", "r2")],
        join_clauses=[
            JoinClause(ColumnRef("r0", "a"), ColumnRef("r1", "a")),
            JoinClause(ColumnRef("r1", "b"), ColumnRef("r2", "b")),
        ],
        local_predicates={"r2": [Comparison(ComparisonOp.LT,
                                            ColumnRef("r2", "attr"),
                                            Literal(10))]},
        name="delta-semantics")


@dataclass
class DeltaSemanticsResult:
    """Outcomes of the Figure 2 / Figure 3 demonstrations."""

    rows_delta_r1: float          # |R0 ⋉̂ R1|
    rows_delta_r1_r2: float       # |R0 ⋉̂ (R1, R2)|
    illegal_join_rejected: bool   # Figure 3(b) rejected
    exception_join_allowed: bool  # Figure 3(c) allowed

    @property
    def delta_dependency_holds(self) -> bool:
        """Figure 2's inequality |R0 ⋉̂ (R1,R2)| ≤ |R0 ⋉̂ R1|."""
        return self.rows_delta_r1_r2 <= self.rows_delta_r1 + 1e-6


def run_delta_semantics() -> DeltaSemanticsResult:
    """Demonstrate the δ-dependent cardinality and the join legality rules."""
    catalog = build_micro_catalog()
    query = build_micro_query()
    estimator = CardinalityEstimator(catalog, query)
    settings = BfCboSettings.paper_defaults().with_overrides(min_apply_rows=1.0)
    enumerator = JoinEnumerator(catalog, query, estimator, CostModel(), settings)

    apply_col = ColumnRef("r0", "a")
    build_col = ColumnRef("r1", "a")

    # Figure 2: the same Bloom filter with two different δ sets.
    est_r1 = estimator.bloom_estimate(apply_col, build_col, frozenset({"r1"}))
    est_r1_r2 = estimator.bloom_estimate(apply_col, build_col,
                                         frozenset({"r1", "r2"}))
    rows_r1 = estimator.bloom_scan_rows("r0", [est_r1])
    rows_r1_r2 = estimator.bloom_scan_rows("r0", [est_r1_r2])

    # Figure 3: legality of joining the δ={r1,r2} sub-plan with r1 alone.
    spec = None
    two_delta_scan = None
    for candidate_delta, estimate in ((frozenset({"r1", "r2"}), est_r1_r2),):
        from ..core.candidates import BloomFilterSpec
        spec = BloomFilterSpec(filter_id="bf_fig3", apply_column=apply_col,
                               build_column=build_col, delta=candidate_delta,
                               estimate=estimate)
        two_delta_scan = enumerator.make_bloom_scan("r0", [spec])

    plain_r1_scan = enumerator.make_seq_scan("r1")
    pair = JoinPair(union=frozenset({"r0", "r1"}), outer=frozenset({"r0"}),
                    inner=frozenset({"r1"}),
                    clauses=tuple(query.clauses_between(frozenset({"r0"}),
                                                        frozenset({"r1"}))))
    illegal_plans = enumerator.combine(pair, two_delta_scan, plain_r1_scan)

    # The exception (panel c): r1's own sub-plan carries a pending δ={r2} filter.
    est_r1_from_r2 = estimator.bloom_estimate(ColumnRef("r1", "b"),
                                              ColumnRef("r2", "b"),
                                              frozenset({"r2"}))
    from ..core.candidates import BloomFilterSpec
    r1_spec = BloomFilterSpec(filter_id="bf_fig3_inner",
                              apply_column=ColumnRef("r1", "b"),
                              build_column=ColumnRef("r2", "b"),
                              delta=frozenset({"r2"}), estimate=est_r1_from_r2)
    bloom_r1_scan = enumerator.make_bloom_scan("r1", [r1_spec])
    exception_plans = enumerator.combine(pair, two_delta_scan, bloom_r1_scan)

    return DeltaSemanticsResult(
        rows_delta_r1=rows_r1,
        rows_delta_r1_r2=rows_r1_r2,
        illegal_join_rejected=len(illegal_plans) == 0,
        exception_join_allowed=len(exception_plans) > 0)
