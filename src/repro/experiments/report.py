"""Shared experiment infrastructure: query runners and result tables.

Every experiment module produces plain dataclasses plus a text rendering, so
the same code backs the runnable examples, the pytest-benchmark harness and
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.heuristics import BfCboSettings
from ..core.optimizer import OptimizationResult, Optimizer, OptimizerMode
from ..core.plans import count_bloom_filters
from ..core.query import QueryBlock
from ..executor.context import ExecutionContext
from ..executor.runtime import ExecutionResult, Executor
from ..storage.catalog import Catalog


def scaled_settings(scale_factor: float,
                    base: Optional[BfCboSettings] = None) -> BfCboSettings:
    """Scale the paper's absolute heuristic thresholds to a scale factor.

    The paper's thresholds (Heuristic 2's 10,000-row apply minimum and
    Heuristic 5's 2,000,000-distinct-value filter cap) were chosen for TPC-H
    SF100.  When the reproduction runs at a smaller scale factor the same
    *relative* behaviour is obtained by scaling both thresholds by
    ``scale_factor / 100``.
    """
    base = base or BfCboSettings.paper_defaults()
    ratio = max(scale_factor / 100.0, 1e-9)
    return base.with_overrides(
        min_apply_rows=max(1.0, base.min_apply_rows * ratio),
        max_build_ndv=max(64.0, base.max_build_ndv * ratio),
        heuristic8_min_total_join_input=base.heuristic8_min_total_join_input * ratio,
    )


@dataclass
class QueryRun:
    """The outcome of planning (and optionally executing) one query."""

    query_name: str
    mode: OptimizerMode
    planning_time_ms: float
    estimated_cost: float
    num_bloom_filters: int
    simulated_latency: Optional[float] = None
    wall_time_seconds: Optional[float] = None
    output_rows: Optional[int] = None
    cardinality_mae: Optional[float] = None
    optimization: Optional[OptimizationResult] = None
    execution: Optional[ExecutionResult] = None


class QueryRunner:
    """Plans and executes query blocks under the three optimizer modes."""

    def __init__(self, catalog: Catalog, scale_factor: Optional[float] = None,
                 degree_of_parallelism: int = 48) -> None:
        self.catalog = catalog
        self.scale_factor = scale_factor
        self.optimizer = Optimizer(catalog)
        self.context = ExecutionContext.for_catalog(
            catalog, degree_of_parallelism=degree_of_parallelism)

    def settings_for(self, mode: OptimizerMode,
                     settings: Optional[BfCboSettings]) -> Optional[BfCboSettings]:
        """Apply scale-factor threshold scaling when requested."""
        if settings is None and mode is OptimizerMode.BF_CBO \
                and self.scale_factor is not None:
            return scaled_settings(self.scale_factor)
        if settings is not None and self.scale_factor is not None \
                and mode is OptimizerMode.BF_CBO:
            return scaled_settings(self.scale_factor, settings)
        return settings

    def plan(self, query: QueryBlock, mode: OptimizerMode,
             settings: Optional[BfCboSettings] = None) -> QueryRun:
        """Plan a query without executing it."""
        result = self.optimizer.optimize(query, mode,
                                         self.settings_for(mode, settings))
        return QueryRun(query_name=query.name, mode=mode,
                        planning_time_ms=result.planning_time_ms,
                        estimated_cost=result.estimated_cost,
                        num_bloom_filters=result.num_bloom_filters,
                        optimization=result)

    def run(self, query: QueryBlock, mode: OptimizerMode,
            settings: Optional[BfCboSettings] = None) -> QueryRun:
        """Plan and execute a query, collecting runtime metrics."""
        run = self.plan(query, mode, settings)
        executor = Executor(self.context)
        execution = executor.execute(run.optimization.plan)
        run.execution = execution
        run.simulated_latency = execution.simulated_latency
        run.wall_time_seconds = execution.metrics.wall_time_seconds
        run.output_rows = execution.num_rows
        run.cardinality_mae = execution.metrics.mean_absolute_error()
        return run


# ---------------------------------------------------------------------------
# Text tables
# ---------------------------------------------------------------------------


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Render a fixed-width text table (used by examples and EXPERIMENTS.md)."""
    columns = [list(map(str, column)) for column in
               zip(*([headers] + [list(map(str, row)) for row in rows]))] \
        if rows else [[str(h)] for h in headers]
    widths = [max(len(value) for value in column) for column in columns]
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(v).ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def percent_reduction(baseline: float, improved: float) -> float:
    """Percent reduction of ``improved`` relative to ``baseline``."""
    if baseline <= 0:
        return 0.0
    return 100.0 * (baseline - improved) / baseline
