"""Shared experiment infrastructure: query runners and result tables.

Every experiment module produces plain dataclasses plus a text rendering, so
the same code backs the runnable examples, the pytest-benchmark harness and
EXPERIMENTS.md.  ``scaled_settings``, ``format_table`` and
``percent_reduction`` are re-exported from their new homes
(:mod:`repro.core.heuristics`, :mod:`repro.textutil`) for backwards
compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..api.database import Database
from ..core.heuristics import BfCboSettings, scaled_settings
from ..core.optimizer import OptimizationResult, OptimizerMode
from ..core.query import QueryBlock
from ..executor.runtime import ExecutionResult
from ..storage.catalog import Catalog
from ..textutil import format_table, percent_reduction


@dataclass
class QueryRun:
    """The outcome of planning (and optionally executing) one query."""

    query_name: str
    mode: OptimizerMode
    planning_time_ms: float
    estimated_cost: float
    num_bloom_filters: int
    simulated_latency: Optional[float] = None
    wall_time_seconds: Optional[float] = None
    output_rows: Optional[int] = None
    cardinality_mae: Optional[float] = None
    optimization: Optional[OptimizationResult] = None
    execution: Optional[ExecutionResult] = None


class QueryRunner:
    """Plans and executes query blocks under the three optimizer modes.

    A thin wrapper over the session API: a private
    :class:`~repro.api.database.Database` (with *both caches disabled*, so
    every planning time reported by an experiment is a real, cold
    optimization — the paper's planner-latency numbers must not be amortised
    away) and one :class:`~repro.api.session.Session` that executes the
    plans.  Session history is disabled too: experiments keep their own
    result rows and must not pin every batch and plan in memory.
    """

    def __init__(self, catalog: Catalog, scale_factor: Optional[float] = None,
                 degree_of_parallelism: int = 48) -> None:
        self.catalog = catalog
        self.scale_factor = scale_factor
        self.database = Database(catalog, scale_factor=scale_factor,
                                 plan_cache_size=0, sequence_cache_size=0)
        self.session = self.database.connect(
            degree_of_parallelism=degree_of_parallelism, history_limit=0)
        # Backwards-compatible seams for callers that poked the internals.
        self.optimizer = self.database.optimizer
        self.context = self.session.context

    @staticmethod
    def _to_query_run(query: QueryBlock, mode: OptimizerMode,
                      session_result) -> QueryRun:
        """Map a session QueryResult onto the experiment QueryRun record."""
        result = session_result.optimization
        run = QueryRun(query_name=query.name, mode=mode,
                       planning_time_ms=result.planning_time_ms,
                       estimated_cost=result.estimated_cost,
                       num_bloom_filters=result.num_bloom_filters,
                       optimization=result)
        execution = session_result.execution
        if execution is not None:
            run.execution = execution
            run.simulated_latency = execution.simulated_latency
            run.wall_time_seconds = execution.metrics.wall_time_seconds
            run.output_rows = execution.num_rows
            run.cardinality_mae = execution.metrics.mean_absolute_error()
        return run

    def plan(self, query: QueryBlock, mode: OptimizerMode,
             settings: Optional[BfCboSettings] = None) -> QueryRun:
        """Plan a query without executing it."""
        return self._to_query_run(query, mode,
                                  self.session.plan(query, mode, settings))

    def run(self, query: QueryBlock, mode: OptimizerMode,
            settings: Optional[BfCboSettings] = None) -> QueryRun:
        """Plan and execute a query, collecting runtime metrics."""
        return self._to_query_run(query, mode,
                                  self.session.execute(query, mode, settings))


