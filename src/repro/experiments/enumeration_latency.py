"""Planner-latency microbenchmark on large synthetic join topologies.

The TPC-H queries top out at eight relations, which hides the asymptotic cost
of join enumeration.  This experiment builds statistics-only chain, star and
clique queries of 10+ relations — the shapes with the fewest, an intermediate
number, and the most connected subgraphs respectively — and measures

* the time to exhaust :meth:`JoinEnumerator.enumerate_join_pairs` (the
  structural walk both BF-CBO phases pay),
* full planning time through the :class:`Optimizer` facade, and
* the adaptive planner's behaviour (:func:`run_adaptive_latency` /
  :func:`run_adaptive_speedup`): which points run the exact DP, which fall
  back to the GOO/IKKBZ greedy ordering, and how large the resulting
  speedup is on clique shapes where the exact DP is intractable.

It is the benchmark used to validate the bitmask DPccp enumeration rewrite
and the budget/fallback work on top of it (see ``docs/enumeration.md``): the
pair walk must emit exactly the connected (csg, cmp) pairs without scanning
the 2^n disconnected subsets, and planning time must stay bounded past the
fallback regime.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..core.cardinality import CardinalityEstimator
from ..core.cost import CostModel
from ..core.enumerator import JoinEnumerator
from ..core.expressions import ColumnRef
from ..core.heuristics import BfCboSettings
from ..core.optimizer import Optimizer, OptimizerMode
from ..core.query import BaseRelation, JoinClause, QueryBlock
from ..storage.catalog import Catalog
from ..storage.schema import make_schema
from ..storage.statistics import synthetic_statistics
from ..storage.types import INT64
from .report import format_table

#: The topologies the benchmark understands.
TOPOLOGIES = ("chain", "star", "clique")


def build_topology_catalog(num_tables: int, topology: str,
                           base_rows: int = 10_000_000) -> Catalog:
    """Statistics-only catalog for one synthetic join topology.

    Every table carries a primary key ``pk`` plus one join column per edge it
    participates in, so each clause joins distinct columns and the estimator
    sees sensible per-column distinct counts.
    """
    catalog = Catalog()
    for index in range(num_tables):
        name = "r%d" % index
        rows = max(1_000, int(base_rows / (2 ** index)))
        columns = [("pk", INT64)]
        ndv = {"pk": rows}
        for other in _edge_partners(num_tables, topology, index):
            column = "j%d" % other
            columns.append((column, INT64))
            ndv[column] = max(1, rows // 2)
        schema = make_schema(name, columns, primary_key=["pk"])
        catalog.register_schema(schema, synthetic_statistics(name, rows, ndv))
    return catalog


def build_topology_query(num_tables: int, topology: str) -> QueryBlock:
    """Chain / star / clique query over the matching synthetic catalog."""
    relations = [BaseRelation("r%d" % i, "r%d" % i) for i in range(num_tables)]
    clauses = [JoinClause(ColumnRef("r%d" % i, "j%d" % j),
                          ColumnRef("r%d" % j, "j%d" % i))
               for i, j in _edges(num_tables, topology)]
    return QueryBlock(relations=relations, join_clauses=clauses,
                      name="%s-%d" % (topology, num_tables))


def _edges(num_tables: int, topology: str) -> List[Tuple[int, int]]:
    if topology == "chain":
        return [(i, i + 1) for i in range(num_tables - 1)]
    if topology == "star":
        return [(0, i) for i in range(1, num_tables)]
    if topology == "clique":
        return [(i, j) for i in range(num_tables)
                for j in range(i + 1, num_tables)]
    raise ValueError("unknown topology %r (expected one of %r)"
                     % (topology, TOPOLOGIES))


def _edge_partners(num_tables: int, topology: str, index: int) -> List[int]:
    partners = []
    for i, j in _edges(num_tables, topology):
        if i == index:
            partners.append(j)
        elif j == index:
            partners.append(i)
    return partners


@dataclass
class EnumerationLatencyPoint:
    """Measurements for one (topology, size) query."""

    query: str
    num_tables: int
    join_pairs: int
    enumeration_ms: float
    #: Full planning latency; 0.0 when planning was skipped for the point
    #: (the clique DP is orders of magnitude larger than its enumeration).
    planning_ms: float = 0.0


@dataclass
class EnumerationLatencyResult:
    """All measured topology points."""

    points: List[EnumerationLatencyPoint] = field(default_factory=list)

    def point(self, query: str) -> EnumerationLatencyPoint:
        for point in self.points:
            if point.query == query:
                return point
        raise KeyError(query)

    def to_text(self) -> str:
        headers = ["query", "tables", "join pairs", "enumeration (ms)",
                   "planning (ms)"]
        rows = [[p.query, p.num_tables, p.join_pairs,
                 "%.2f" % p.enumeration_ms, "%.2f" % p.planning_ms]
                for p in self.points]
        return format_table(headers, rows,
                            title="Join enumeration latency on synthetic topologies")


def measure_enumeration(catalog: Catalog, query: QueryBlock) -> Tuple[int, float]:
    """(pair count, milliseconds) to exhaust the structural pair walk.

    Runs under :data:`EXACT_DP_SETTINGS`: this harness validates the exact
    DPccp walk, so the adaptive budget/threshold must never swap in the
    greedy fallback here (it would quietly measure 2(n-1) greedy pairs).
    """
    estimator = CardinalityEstimator(catalog, query)
    enumerator = JoinEnumerator(catalog, query, estimator, CostModel(),
                                EXACT_DP_SETTINGS)
    started = time.perf_counter()
    pairs = sum(1 for _ in enumerator.enumerate_join_pairs())
    elapsed_ms = (time.perf_counter() - started) * 1e3
    return pairs, elapsed_ms


#: Settings that force the exact DPccp DP regardless of size — the baseline
#: the adaptive planner is compared against.
EXACT_DP_SETTINGS = BfCboSettings.disabled().with_overrides(
    enumeration_budget=0, fallback_relation_threshold=0)

#: The (topology, size) grid tracked across PRs by the planner-latency
#: benchmark's machine-readable output.
TRAJECTORY_GRID: Tuple[Tuple[str, int], ...] = tuple(
    (topology, size) for topology in TOPOLOGIES for size in (8, 12, 16, 20))

#: Settings the trajectory grid runs under: the default adaptive planner,
#: with a tighter pair budget so the heavyweight exact mid-points (a clique-8
#: DP alone costs minutes) fall back and the whole grid stays benchmarkable.
TRAJECTORY_SETTINGS = BfCboSettings.disabled().with_overrides(
    enumeration_budget=500)


@dataclass
class AdaptivePlanningPoint:
    """One full planning measurement under the adaptive planner."""

    query: str
    num_tables: int
    planning_ms: float
    #: "" when the exact DP ran; "budget" / "relations" when the greedy
    #: fallback supplied the join order.
    fallback_reason: str
    join_pairs: int
    estimated_cost: float

    def to_dict(self) -> dict:
        """JSON-ready representation (see ``BENCH_planner_latency.json``)."""
        return {
            "query": self.query,
            "num_tables": self.num_tables,
            "planning_ms": round(self.planning_ms, 3),
            "fallback_reason": self.fallback_reason,
            "join_pairs": self.join_pairs,
            "estimated_cost": self.estimated_cost,
        }


@dataclass
class AdaptiveLatencyResult:
    """Adaptive planning measurements over a (topology, size) grid."""

    points: List[AdaptivePlanningPoint] = field(default_factory=list)

    def point(self, query: str) -> AdaptivePlanningPoint:
        for point in self.points:
            if point.query == query:
                return point
        raise KeyError(query)

    def to_text(self) -> str:
        headers = ["query", "tables", "planning (ms)", "fallback",
                   "join pairs"]
        rows = [[p.query, p.num_tables, "%.2f" % p.planning_ms,
                 p.fallback_reason or "exact", p.join_pairs]
                for p in self.points]
        return format_table(headers, rows,
                            title="Adaptive planner latency")


@dataclass
class AdaptiveSpeedupResult:
    """Adaptive clique planning versus the exact DP baseline.

    The exact baseline deliberately runs at a *smaller* clique than the
    adaptive measurement: exact clique DP latency grows without bound (a
    clique-8 DP already takes minutes), and it is monotonically increasing in
    the relation count, so ``speedup`` is a **lower bound** on the true
    same-size ratio — if adaptive clique-20 beats exact clique-7 by 10x, it
    beats exact clique-20 by far more.
    """

    exact: AdaptivePlanningPoint
    adaptive: AdaptivePlanningPoint

    @property
    def speedup(self) -> float:
        return self.exact.planning_ms / max(self.adaptive.planning_ms, 1e-9)


def measure_planning(num_tables: int, topology: str,
                     settings: Optional[BfCboSettings] = None,
                     ) -> AdaptivePlanningPoint:
    """Full NO-BF planning latency of one synthetic topology point."""
    catalog = build_topology_catalog(num_tables, topology)
    query = build_topology_query(num_tables, topology)
    optimizer = Optimizer(catalog)
    result = optimizer.optimize(query, OptimizerMode.NO_BF, settings)
    stats = result.enumeration_stats
    return AdaptivePlanningPoint(
        query=query.name, num_tables=num_tables,
        planning_ms=result.planning_time_ms,
        fallback_reason=stats.fallback_reason,
        join_pairs=stats.join_pairs_considered,
        estimated_cost=result.estimated_cost)


def run_adaptive_latency(specs: Optional[Tuple[Tuple[str, int], ...]] = None,
                         settings: Optional[BfCboSettings] = None,
                         ) -> AdaptiveLatencyResult:
    """Measure full planning over a grid under the adaptive planner."""
    specs = specs if specs is not None else TRAJECTORY_GRID
    settings = settings if settings is not None else TRAJECTORY_SETTINGS
    result = AdaptiveLatencyResult()
    for topology, num_tables in specs:
        result.points.append(measure_planning(num_tables, topology, settings))
    return result


def run_adaptive_speedup(adaptive_spec: Tuple[str, int] = ("clique", 20),
                         exact_spec: Tuple[str, int] = ("clique", 7),
                         ) -> AdaptiveSpeedupResult:
    """Adaptive large-clique planning versus the exact-DP lower bound."""
    exact = measure_planning(exact_spec[1], exact_spec[0], EXACT_DP_SETTINGS)
    adaptive = measure_planning(adaptive_spec[1], adaptive_spec[0])
    return AdaptiveSpeedupResult(exact=exact, adaptive=adaptive)


def run_enumeration_latency(specs: Optional[List[Tuple[str, int]]] = None,
                            plan_topologies: Tuple[str, ...] = ("chain", "star"),
                            ) -> EnumerationLatencyResult:
    """Measure enumeration (and, for ``plan_topologies``, planning) latency.

    Clique queries are excluded from full planning by default: their DP has
    Θ(3^n) (csg, cmp) pairs, so end-to-end planning dwarfs the enumeration
    walk this experiment is about.
    """
    specs = specs or [("chain", 12), ("chain", 14), ("star", 12),
                      ("clique", 10)]
    result = EnumerationLatencyResult()
    for topology, num_tables in specs:
        catalog = build_topology_catalog(num_tables, topology)
        query = build_topology_query(num_tables, topology)
        pairs, enumeration_ms = measure_enumeration(catalog, query)
        planning_ms = 0.0
        if topology in plan_topologies:
            optimizer = Optimizer(catalog)
            planned = optimizer.optimize(query, OptimizerMode.NO_BF)
            planning_ms = planned.planning_time_ms
        result.points.append(EnumerationLatencyPoint(
            query=query.name, num_tables=num_tables, join_pairs=pairs,
            enumeration_ms=enumeration_ms, planning_ms=planning_ms))
    return result


if __name__ == "__main__":  # pragma: no cover - manual benchmark entry point
    print(run_enumeration_latency().to_text())
    print()
    print(run_adaptive_latency().to_text())
    comparison = run_adaptive_speedup()
    print()
    print("clique-20 adaptive %.1f ms vs clique-7 exact %.1f ms "
          "(>= %.0fx speedup lower bound)"
          % (comparison.adaptive.planning_ms, comparison.exact.planning_ms,
             comparison.speedup))
