"""Experiment E6: the naïve single-pass blow-up of Section 3.1.

The paper reports that carrying uncosted Bloom filter sub-plans through a
single bottom-up pass made optimization time explode with the number of joined
tables (28 ms / 375 ms / 56 s / >30 min for 3 / 4 / 5 / 6 tables) while the
two-phase approach stays fast.  This experiment builds chain-join queries of
increasing size over a synthetic star/chain schema, runs both the naïve
enumerator and the two-phase optimizer, and reports planning time and the
number of sub-plans maintained.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..core.cardinality import CardinalityEstimator
from ..core.cost import CostModel
from ..core.expressions import ColumnRef, Comparison, ComparisonOp, Literal
from ..core.heuristics import BfCboSettings
from ..core.naive import NaiveBloomEnumerator, NaiveResult
from ..core.optimizer import Optimizer, OptimizerMode
from ..core.query import BaseRelation, JoinClause, QueryBlock
from ..storage.catalog import Catalog
from ..storage.schema import ForeignKey, make_schema
from ..storage.statistics import synthetic_statistics
from ..storage.types import INT64
from .report import format_table


def build_chain_catalog(num_tables: int, base_rows: int = 10_000_000) -> Catalog:
    """A catalog of ``num_tables`` tables joined in a chain.

    Table sizes decrease along the chain so that every join clause has a larger
    and a smaller side (giving Heuristic 1 something to choose) and every table
    carries a filterable column so Bloom filters are worthwhile.
    """
    catalog = Catalog()
    for index in range(num_tables):
        name = "r%d" % index
        rows = max(1_000, int(base_rows / (3 ** index)))
        foreign_keys = []
        if index < num_tables - 1:
            foreign_keys.append(ForeignKey("fk", "r%d" % (index + 1), "pk"))
        schema = make_schema(name,
                             [("pk", INT64), ("fk", INT64), ("attr", INT64)],
                             primary_key=["pk"], foreign_keys=foreign_keys)
        catalog.register_schema(schema, synthetic_statistics(
            name, rows, {"pk": rows, "fk": max(1, rows // 3), "attr": 1_000},
            {"attr": (0.0, 999.0)}))
    return catalog


def build_chain_query(num_tables: int) -> QueryBlock:
    """``r0 ⋈ r1 ⋈ ... ⋈ r{n-1}`` joined on ``r{i}.fk = r{i+1}.pk``."""
    relations = [BaseRelation("r%d" % i, "r%d" % i) for i in range(num_tables)]
    clauses = [JoinClause(ColumnRef("r%d" % i, "fk"),
                          ColumnRef("r%d" % (i + 1), "pk"))
               for i in range(num_tables - 1)]
    # A mild filter on the last (smallest) table gives the Bloom filters a
    # predicate to transfer up the chain.
    local = {"r%d" % (num_tables - 1): [
        Comparison(ComparisonOp.LT,
                   ColumnRef("r%d" % (num_tables - 1), "attr"), Literal(100))]}
    return QueryBlock(relations=relations, join_clauses=clauses,
                      local_predicates=local,
                      name="chain-%d" % num_tables)


@dataclass
class BlowupPoint:
    """Measurements for one chain length."""

    num_tables: int
    naive_seconds: float
    naive_subplans: int
    naive_completed: bool
    two_phase_seconds: float
    two_phase_subplans: int = 0

    @property
    def slowdown(self) -> float:
        """Naïve planning time relative to two-phase planning time."""
        if self.two_phase_seconds <= 0:
            return float("inf")
        return self.naive_seconds / self.two_phase_seconds

    @property
    def subplan_blowup(self) -> float:
        """How many more sub-plans the naïve approach keeps than two-phase."""
        return self.naive_subplans / max(1, self.two_phase_subplans)


@dataclass
class BlowupResult:
    """The Section 3.1 growth curve."""

    points: List[BlowupPoint] = field(default_factory=list)

    def to_text(self) -> str:
        headers = ["tables", "naive (s)", "naive sub-plans", "completed",
                   "two-phase (s)", "two-phase sub-plans", "sub-plan blow-up"]
        rows = [[p.num_tables, "%.4f" % p.naive_seconds, p.naive_subplans,
                 "yes" if p.naive_completed else "budget exceeded",
                 "%.4f" % p.two_phase_seconds, p.two_phase_subplans,
                 "%.1fx" % p.subplan_blowup]
                for p in self.points]
        return format_table(headers, rows,
                            title="Naive vs two-phase planning (Section 3.1)")


def run_naive_blowup(table_counts: Optional[List[int]] = None,
                     naive_budget_seconds: float = 20.0,
                     naive_max_subplans: int = 100_000) -> BlowupResult:
    """Measure naïve vs two-phase planning time for growing chain joins."""
    table_counts = table_counts or [3, 4, 5, 6]
    # Candidates on both sides of every clause (Heuristic 9 style marking) make
    # the unresolved-sub-plan growth visible quickly, exactly the situation the
    # paper's Section 3.1 measurements describe.
    settings = BfCboSettings.paper_defaults().with_overrides(
        min_apply_rows=1.0, use_heuristic9=True)
    result = BlowupResult()
    for count in table_counts:
        catalog = build_chain_catalog(count)
        query = build_chain_query(count)
        estimator = CardinalityEstimator(catalog, query)
        naive = NaiveBloomEnumerator(catalog, query, estimator, CostModel(),
                                     settings,
                                     max_total_subplans=naive_max_subplans,
                                     max_seconds=naive_budget_seconds)
        naive_result = naive.run()

        optimizer = Optimizer(catalog)
        two_phase = optimizer.optimize(query, OptimizerMode.BF_CBO, settings)
        two_phase_subplans = two_phase.enumeration_stats.plans_retained + \
            sum(len(plan_list) for rel, plan_list in two_phase.plan_lists.items()
                if len(rel) == 1)
        result.points.append(BlowupPoint(
            num_tables=count,
            naive_seconds=naive_result.planning_time_seconds,
            naive_subplans=naive_result.subplans_maintained,
            naive_completed=naive_result.completed,
            two_phase_seconds=two_phase.planning_time_ms / 1e3,
            two_phase_subplans=two_phase_subplans))
    return result
