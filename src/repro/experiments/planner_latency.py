"""Experiment E9: planner latency overhead (right-hand columns of Tables 2/3).

The paper reports per-query planner latencies of BF-Post (254.3 ms total) and
BF-CBO (540.7 ms total; 421.9 ms with Heuristic 7), showing that BF-CBO's
larger search space costs planning time.  This experiment plans every analysed
query against the SF100 statistics-only catalog (no execution) in the three
configurations and reports per-query and total planner latencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.heuristics import BfCboSettings
from ..core.optimizer import OptimizerMode
from ..tpch.workload import TpchWorkload
from .report import QueryRunner, format_table


@dataclass
class PlannerLatencyRow:
    """Planner latency of one query under the three configurations."""

    query: str
    bf_post_ms: float
    bf_cbo_ms: float
    bf_cbo_h7_ms: float


@dataclass
class PlannerLatencyResult:
    """Planner latency comparison (Tables 2/3, right-hand columns)."""

    rows: List[PlannerLatencyRow] = field(default_factory=list)
    scale_factor: float = 100.0

    @property
    def total_bf_post_ms(self) -> float:
        return sum(r.bf_post_ms for r in self.rows)

    @property
    def total_bf_cbo_ms(self) -> float:
        return sum(r.bf_cbo_ms for r in self.rows)

    @property
    def total_bf_cbo_h7_ms(self) -> float:
        return sum(r.bf_cbo_h7_ms for r in self.rows)

    def to_text(self) -> str:
        headers = ["Q#", "BF-Post (ms)", "BF-CBO (ms)", "BF-CBO+H7 (ms)"]
        rows = [[r.query, "%.1f" % r.bf_post_ms, "%.1f" % r.bf_cbo_ms,
                 "%.1f" % r.bf_cbo_h7_ms] for r in self.rows]
        rows.append(["total", "%.1f" % self.total_bf_post_ms,
                     "%.1f" % self.total_bf_cbo_ms,
                     "%.1f" % self.total_bf_cbo_h7_ms])
        return format_table(headers, rows,
                            title="Planner latency at SF%.0f statistics"
                            % self.scale_factor)


def run_planner_latency(workload: Optional[TpchWorkload] = None,
                        scale_factor: float = 100.0,
                        query_numbers: Optional[List[int]] = None,
                        ) -> PlannerLatencyResult:
    """Measure planning time (no execution) for the three configurations."""
    workload = workload or TpchWorkload.statistics_only(
        scale_factor, query_numbers=query_numbers)
    runner = QueryRunner(workload.catalog, scale_factor=workload.scale_factor)
    result = PlannerLatencyResult(scale_factor=workload.scale_factor)
    numbers = query_numbers if query_numbers is not None else workload.query_numbers
    for number in numbers:
        query = workload.query(number)
        bf_post = runner.plan(query, OptimizerMode.BF_POST)
        bf_cbo = runner.plan(query, OptimizerMode.BF_CBO,
                             BfCboSettings.paper_defaults())
        bf_cbo_h7 = runner.plan(query, OptimizerMode.BF_CBO,
                                BfCboSettings.with_heuristic7())
        result.rows.append(PlannerLatencyRow(
            query=query.name, bf_post_ms=bf_post.planning_time_ms,
            bf_cbo_ms=bf_cbo.planning_time_ms,
            bf_cbo_h7_ms=bf_cbo_h7.planning_time_ms))
    return result
