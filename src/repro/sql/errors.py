"""Errors raised by the SQL front end."""

from __future__ import annotations

from ..errors import ReproError


class SqlError(ReproError, ValueError):
    """Base class for SQL front-end errors.

    Part of the :class:`~repro.errors.ReproError` hierarchy; still a
    ``ValueError`` so pre-hierarchy ``except ValueError`` callers keep working.
    """


class LexerError(SqlError):
    """Raised when the lexer encounters an invalid character sequence."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__("%s (at offset %d)" % (message, position))
        self.position = position


class ParseError(SqlError):
    """Raised when the parser cannot make sense of the token stream."""

    def __init__(self, message: str, token=None) -> None:
        location = "" if token is None else " near %r (offset %d)" % (
            token.text, token.position)
        super().__init__(message + location)
        self.token = token


class BindError(SqlError):
    """Raised when name resolution or semantic analysis fails."""
