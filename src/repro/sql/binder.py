"""The binder: lowers the syntactic AST into a bound query block.

Binding resolves table and column names against the catalog, constant-folds
date/interval arithmetic, converts aggregate calls, and — most importantly for
the optimizer — classifies every WHERE conjunct as either an equi-join clause,
a single-relation local predicate, or a multi-relation residual predicate.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.expressions import (
    AggregateCall,
    AggregateFunction,
    And,
    Arithmetic,
    ArithmeticOp,
    Between,
    Coalesce,
    ColumnRef,
    Comparison,
    ComparisonOp,
    ExtractYear,
    NullIf,
    InList,
    IsNotNull,
    IsNull,
    Like,
    Literal,
    Not,
    Or,
    Predicate,
    ScalarExpression,
    conjuncts,
)
from ..core.query import (
    BaseRelation,
    JoinClause,
    OrderItem,
    OutputItem,
    QueryBlock,
)
from ..storage.catalog import Catalog
from ..storage.types import parse_date
from . import ast
from .errors import BindError
from .parser import parse_select

_INTERVAL_DAYS = {"day": 1, "month": 30, "year": 365}

_AGG_FUNCTIONS = {
    "count": AggregateFunction.COUNT,
    "sum": AggregateFunction.SUM,
    "avg": AggregateFunction.AVG,
    "min": AggregateFunction.MIN,
    "max": AggregateFunction.MAX,
}

_ARITHMETIC_OPS = {
    "+": ArithmeticOp.ADD,
    "-": ArithmeticOp.SUB,
    "*": ArithmeticOp.MUL,
    "/": ArithmeticOp.DIV,
}

_COMPARISON_OPS = {
    "=": ComparisonOp.EQ,
    "<>": ComparisonOp.NE,
    "<": ComparisonOp.LT,
    "<=": ComparisonOp.LE,
    ">": ComparisonOp.GT,
    ">=": ComparisonOp.GE,
}


class Binder:
    """Binds one parsed SELECT statement against a catalog."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog
        self._aliases: Dict[str, str] = {}  # alias -> table name

    # ------------------------------------------------------------------

    def bind(self, statement: ast.SelectStatement, name: str = "query") -> QueryBlock:
        """Produce a bound :class:`QueryBlock` from a parsed statement."""
        relations = self._bind_from(statement.from_tables)

        join_clauses: List[JoinClause] = []
        local_predicates: Dict[str, List[Predicate]] = {}
        residual_predicates: List[Predicate] = []
        if statement.where is not None:
            predicate = self._bind_predicate(statement.where)
            for conjunct in conjuncts(predicate):
                self._classify(conjunct, join_clauses, local_predicates,
                               residual_predicates)

        output = self._bind_select_list(statement.select_items)
        group_by = [self._bind_group_by(expr, output)
                    for expr in statement.group_by]
        order_by = self._bind_order_by(statement.order_by, output)

        return QueryBlock(relations=relations, join_clauses=join_clauses,
                          local_predicates=local_predicates,
                          residual_predicates=residual_predicates,
                          output=output, group_by=group_by, order_by=order_by,
                          limit=statement.limit, name=name)

    # -- FROM ------------------------------------------------------------

    def _bind_from(self, table_refs: List[ast.TableRef]) -> List[BaseRelation]:
        relations: List[BaseRelation] = []
        self._aliases = {}
        for ref in table_refs:
            if not self.catalog.has_table(ref.table):
                raise BindError("unknown table %r" % ref.table)
            alias = ref.effective_alias
            if alias in self._aliases:
                raise BindError("duplicate relation alias %r" % alias)
            self._aliases[alias] = ref.table.lower()
            relations.append(BaseRelation(alias=alias, table_name=ref.table.lower()))
        return relations

    # -- name resolution -----------------------------------------------------

    def _resolve_column(self, column: ast.ColumnName) -> ColumnRef:
        if column.qualifier is not None:
            alias = column.qualifier
            if alias not in self._aliases:
                raise BindError("unknown relation alias %r" % alias)
            schema = self.catalog.schema(self._aliases[alias])
            if not schema.has_column(column.name):
                raise BindError("table %r has no column %r"
                                % (self._aliases[alias], column.name))
            return ColumnRef(relation=alias, column=column.name)
        matches = [alias for alias, table in self._aliases.items()
                   if self.catalog.schema(table).has_column(column.name)]
        if not matches:
            raise BindError("column %r not found in any FROM relation"
                            % column.name)
        if len(matches) > 1:
            raise BindError("column %r is ambiguous (relations: %s)"
                            % (column.name, ", ".join(sorted(matches))))
        return ColumnRef(relation=matches[0], column=column.name)

    # -- scalar expressions ------------------------------------------------------

    def _bind_scalar(self, node: ast.SyntaxNode) -> ScalarExpression:
        if isinstance(node, ast.ColumnName):
            return self._resolve_column(node)
        if isinstance(node, ast.NumberLiteral):
            return Literal(node.value)
        if isinstance(node, ast.StringLiteral):
            return Literal(node.value)
        if isinstance(node, ast.NullLiteral):
            return Literal(None)
        if isinstance(node, ast.DateLiteral):
            return Literal(parse_date(node.text))
        if isinstance(node, ast.IntervalLiteral):
            if node.unit not in _INTERVAL_DAYS:
                raise BindError("unsupported interval unit %r" % node.unit)
            return Literal(node.amount * _INTERVAL_DAYS[node.unit])
        if isinstance(node, ast.BinaryOp):
            left = self._bind_scalar(node.left)
            right = self._bind_scalar(node.right)
            if node.op not in _ARITHMETIC_OPS:
                raise BindError("unsupported operator %r" % node.op)
            op = _ARITHMETIC_OPS[node.op]
            # Constant folding keeps date +/- interval arithmetic as literals,
            # which the selectivity estimator can then reason about directly.
            if isinstance(left, Literal) and isinstance(right, Literal):
                if left.value is None or right.value is None:
                    return Literal(None)  # NULL propagates through arithmetic
                value = Arithmetic(op, left, right).evaluate(lambda _: None)
                return Literal(value.item() if hasattr(value, "item") else value)
            return Arithmetic(op, left, right)
        if isinstance(node, ast.ExtractExpr):
            if node.field_name != "year":
                raise BindError("only EXTRACT(YEAR ...) is supported")
            return ExtractYear(self._bind_scalar(node.operand))
        if isinstance(node, ast.FunctionCall):
            return self._bind_function(node)
        raise BindError("unsupported scalar expression %r" % type(node).__name__)

    def _bind_function(self, node: ast.FunctionCall) -> ScalarExpression:
        name = node.name.lower()
        if name in _AGG_FUNCTIONS:
            if node.star:
                return AggregateCall(func=_AGG_FUNCTIONS[name], operand=None,
                                     distinct=node.distinct)
            if len(node.args) != 1:
                raise BindError("aggregate %r takes exactly one argument" % name)
            return AggregateCall(func=_AGG_FUNCTIONS[name],
                                 operand=self._bind_scalar(node.args[0]),
                                 distinct=node.distinct)
        if name in ("coalesce", "nullif"):
            if node.star or node.distinct:
                raise BindError("%s does not take * or DISTINCT" % name)
            args = [self._bind_scalar(arg) for arg in node.args]
            if name == "coalesce":
                if len(args) < 2:
                    raise BindError("coalesce takes at least two arguments")
                return Coalesce(tuple(args))
            if len(args) != 2:
                raise BindError("nullif takes exactly two arguments")
            return NullIf(args[0], args[1])
        raise BindError("unsupported function %r" % name)

    # -- predicates ---------------------------------------------------------------

    def _bind_predicate(self, node: ast.SyntaxNode) -> Predicate:
        if isinstance(node, ast.AndExpr):
            return And(tuple(self._bind_predicate(op) for op in node.operands))
        if isinstance(node, ast.OrExpr):
            return Or(tuple(self._bind_predicate(op) for op in node.operands))
        if isinstance(node, ast.NotExpr):
            return Not(self._bind_predicate(node.operand))
        if isinstance(node, ast.ComparisonExpr):
            return Comparison(op=_COMPARISON_OPS[node.op],
                              left=self._bind_scalar(node.left),
                              right=self._bind_scalar(node.right))
        if isinstance(node, ast.BetweenExpr):
            return Between(operand=self._bind_scalar(node.operand),
                           low=self._bind_scalar(node.low),
                           high=self._bind_scalar(node.high))
        if isinstance(node, ast.InExpr):
            values = []
            for value in node.values:
                bound = self._bind_scalar(value)
                if not isinstance(bound, Literal):
                    raise BindError("IN list elements must be literals")
                values.append(bound.value)
            return InList(operand=self._bind_scalar(node.operand),
                          values=tuple(values))
        if isinstance(node, ast.LikeExpr):
            return Like(operand=self._bind_scalar(node.operand),
                        pattern=node.pattern, negated=node.negated)
        if isinstance(node, ast.IsNullExpr):
            operand = self._bind_scalar(node.operand)
            return IsNotNull(operand) if node.negated else IsNull(operand)
        raise BindError("unsupported predicate %r" % type(node).__name__)

    # -- classification -----------------------------------------------------------

    @staticmethod
    def _classify(predicate: Predicate, join_clauses: List[JoinClause],
                  local_predicates: Dict[str, List[Predicate]],
                  residual_predicates: List[Predicate]) -> None:
        """Sort a WHERE conjunct into join clause / local / residual buckets."""
        if isinstance(predicate, Comparison) and predicate.is_equi_join():
            join_clauses.append(JoinClause(left=predicate.left,
                                           right=predicate.right))
            return
        relations = predicate.referenced_relations()
        if len(relations) == 1:
            alias = next(iter(relations))
            local_predicates.setdefault(alias, []).append(predicate)
        else:
            residual_predicates.append(predicate)

    # -- SELECT / ORDER BY ------------------------------------------------------------

    def _bind_select_list(self, items: List[ast.SelectItem]) -> List[OutputItem]:
        output: List[OutputItem] = []
        for index, item in enumerate(items):
            if item.star:
                continue  # SELECT * keeps all join columns; no projection needed
            expression = self._bind_scalar(item.expression)
            name = item.alias or self._default_name(item.expression, index)
            output.append(OutputItem(expression=expression, name=name))
        return output

    @staticmethod
    def _default_name(expression: ast.SyntaxNode, index: int) -> str:
        if isinstance(expression, ast.ColumnName):
            return expression.name
        if isinstance(expression, ast.FunctionCall):
            return expression.name
        return "col%d" % index

    def _bind_group_by(self, expression: ast.SyntaxNode,
                       output: List[OutputItem]) -> ScalarExpression:
        """Bind a GROUP BY expression, allowing SELECT-list aliases.

        ``GROUP BY l_year`` where ``l_year`` is a SELECT alias groups by the
        aliased expression, matching standard SQL behaviour.
        """
        if (isinstance(expression, ast.ColumnName)
                and expression.qualifier is None):
            for item in output:
                if item.name == expression.name and not item.is_aggregate:
                    return item.expression
        return self._bind_scalar(expression)

    def _bind_order_by(self, items: List[ast.OrderByItem],
                       output: List[OutputItem]) -> List[OrderItem]:
        output_names = {item.name for item in output}
        order_by: List[OrderItem] = []
        for item in items:
            expression = item.expression
            # ORDER BY may reference a SELECT-list alias; represent it as an
            # unqualified column so the executor resolves it by output name.
            if (isinstance(expression, ast.ColumnName)
                    and expression.qualifier is None
                    and expression.name in output_names):
                bound: ScalarExpression = ColumnRef(relation="", column=expression.name)
            else:
                bound = self._bind_scalar(expression)
            order_by.append(OrderItem(expression=bound,
                                      descending=item.descending,
                                      nulls_first=bool(item.nulls_first)))
        return order_by


def bind_sql(catalog: Catalog, sql: str, name: str = "query") -> QueryBlock:
    """Parse and bind a SQL string into a query block."""
    statement = parse_select(sql)
    return Binder(catalog).bind(statement, name=name)
