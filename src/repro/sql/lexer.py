"""Tokenizer for the supported SQL subset."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List

from .errors import LexerError

KEYWORDS = {
    "select", "from", "where", "group", "by", "order", "limit", "as", "and",
    "or", "not", "between", "in", "like", "is", "null", "asc", "desc", "date",
    "interval", "extract", "year", "distinct", "inner", "left", "right",
    "full", "outer", "join", "on", "semi", "anti", "case", "when", "then",
    "else", "end", "exists", "count", "sum", "avg", "min", "max",
}


class TokenType(enum.Enum):
    """Lexical token categories."""

    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCTUATION = "punctuation"
    END = "end"


@dataclass(frozen=True)
class Token:
    """A single lexical token."""

    type: TokenType
    text: str
    position: int

    def is_keyword(self, *words: str) -> bool:
        """True if this token is one of the given keywords."""
        return self.type is TokenType.KEYWORD and self.text.lower() in {
            w.lower() for w in words}

    def __str__(self) -> str:
        return self.text


_OPERATORS = ("<>", "!=", ">=", "<=", "=", "<", ">", "+", "-", "*", "/", "||")
_PUNCTUATION = "(),.;"


def tokenize(text: str) -> List[Token]:
    """Tokenize ``text`` into a list of tokens ending with an END token."""
    tokens: List[Token] = []
    i = 0
    length = len(text)
    while i < length:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if text.startswith("--", i):
            newline = text.find("\n", i)
            i = length if newline < 0 else newline + 1
            continue
        if ch == "'":
            end = text.find("'", i + 1)
            if end < 0:
                raise LexerError("unterminated string literal", i)
            tokens.append(Token(TokenType.STRING, text[i + 1:end], i))
            i = end + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < length and text[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < length and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                seen_dot = seen_dot or text[j] == "."
                j += 1
            tokens.append(Token(TokenType.NUMBER, text[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < length and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            token_type = (TokenType.KEYWORD if word.lower() in KEYWORDS
                          else TokenType.IDENTIFIER)
            tokens.append(Token(token_type, word, i))
            i = j
            continue
        matched_operator = None
        for operator in _OPERATORS:
            if text.startswith(operator, i):
                matched_operator = operator
                break
        if matched_operator is not None:
            tokens.append(Token(TokenType.OPERATOR, matched_operator, i))
            i += len(matched_operator)
            continue
        if ch in _PUNCTUATION:
            tokens.append(Token(TokenType.PUNCTUATION, ch, i))
            i += 1
            continue
        raise LexerError("unexpected character %r" % ch, i)
    tokens.append(Token(TokenType.END, "", length))
    return tokens
