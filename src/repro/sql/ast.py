"""The purely syntactic AST produced by the parser.

The syntax tree is catalog-agnostic: column references are just (qualifier,
name) pairs and no types or relations have been resolved yet.  The binder
(:mod:`repro.sql.binder`) lowers this tree into the bound query model of
:mod:`repro.core.query`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


class SyntaxNode:
    """Base class for all syntax-tree nodes."""


# -- scalar expressions -------------------------------------------------------


@dataclass(frozen=True)
class ColumnName(SyntaxNode):
    """``qualifier.name`` or a bare ``name``."""

    name: str
    qualifier: Optional[str] = None

    def __str__(self) -> str:
        return "%s.%s" % (self.qualifier, self.name) if self.qualifier else self.name


@dataclass(frozen=True)
class NumberLiteral(SyntaxNode):
    """An integer or decimal literal."""

    text: str

    @property
    def value(self):
        return float(self.text) if "." in self.text else int(self.text)


@dataclass(frozen=True)
class StringLiteral(SyntaxNode):
    """A quoted string literal."""

    value: str


@dataclass(frozen=True)
class DateLiteral(SyntaxNode):
    """``DATE 'YYYY-MM-DD'``."""

    text: str


@dataclass(frozen=True)
class NullLiteral(SyntaxNode):
    """The ``NULL`` keyword used as a scalar value."""


@dataclass(frozen=True)
class IntervalLiteral(SyntaxNode):
    """``INTERVAL '<n>' <unit>`` — only day/month/year units are supported."""

    amount: int
    unit: str


@dataclass(frozen=True)
class BinaryOp(SyntaxNode):
    """Binary arithmetic or string concatenation."""

    op: str
    left: SyntaxNode
    right: SyntaxNode


@dataclass(frozen=True)
class FunctionCall(SyntaxNode):
    """A function or aggregate call."""

    name: str
    args: Tuple[SyntaxNode, ...]
    distinct: bool = False
    star: bool = False  # COUNT(*)


@dataclass(frozen=True)
class ExtractExpr(SyntaxNode):
    """``EXTRACT(field FROM expr)``."""

    field_name: str
    operand: SyntaxNode


# -- boolean expressions ----------------------------------------------------------


@dataclass(frozen=True)
class ComparisonExpr(SyntaxNode):
    """``left <op> right`` with op in =, <>, <, <=, >, >=."""

    op: str
    left: SyntaxNode
    right: SyntaxNode


@dataclass(frozen=True)
class BetweenExpr(SyntaxNode):
    """``operand BETWEEN low AND high``."""

    operand: SyntaxNode
    low: SyntaxNode
    high: SyntaxNode


@dataclass(frozen=True)
class InExpr(SyntaxNode):
    """``operand IN (literal, ...)``."""

    operand: SyntaxNode
    values: Tuple[SyntaxNode, ...]


@dataclass(frozen=True)
class LikeExpr(SyntaxNode):
    """``operand [NOT] LIKE pattern``."""

    operand: SyntaxNode
    pattern: str
    negated: bool = False


@dataclass(frozen=True)
class IsNullExpr(SyntaxNode):
    """``operand IS [NOT] NULL``."""

    operand: SyntaxNode
    negated: bool = False


@dataclass(frozen=True)
class NotExpr(SyntaxNode):
    """Logical negation."""

    operand: SyntaxNode


@dataclass(frozen=True)
class AndExpr(SyntaxNode):
    """Conjunction."""

    operands: Tuple[SyntaxNode, ...]


@dataclass(frozen=True)
class OrExpr(SyntaxNode):
    """Disjunction."""

    operands: Tuple[SyntaxNode, ...]


# -- query structure ------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem(SyntaxNode):
    """One SELECT-list entry with an optional alias."""

    expression: SyntaxNode
    alias: Optional[str] = None
    star: bool = False


@dataclass(frozen=True)
class TableRef(SyntaxNode):
    """A FROM-list table reference with an optional alias."""

    table: str
    alias: Optional[str] = None

    @property
    def effective_alias(self) -> str:
        return self.alias or self.table


@dataclass(frozen=True)
class OrderByItem(SyntaxNode):
    """One ORDER BY entry.

    ``nulls_first`` is tri-state: ``None`` when the query spelled no
    ``NULLS FIRST`` / ``NULLS LAST`` modifier (the engine defaults to
    nulls-last), else the explicit choice.
    """

    expression: SyntaxNode
    descending: bool = False
    nulls_first: Optional[bool] = None


@dataclass
class SelectStatement(SyntaxNode):
    """A full SELECT statement in the supported subset."""

    select_items: List[SelectItem] = field(default_factory=list)
    from_tables: List[TableRef] = field(default_factory=list)
    where: Optional[SyntaxNode] = None
    group_by: List[SyntaxNode] = field(default_factory=list)
    order_by: List[OrderByItem] = field(default_factory=list)
    limit: Optional[int] = None
