"""Recursive-descent parser for the supported SQL subset.

Grammar (informal)::

    select    := SELECT item (',' item)* FROM table_ref (',' table_ref)*
                 [WHERE expr] [GROUP BY expr (',' expr)*]
                 [ORDER BY order_item (',' order_item)*] [LIMIT number]
    item      := '*' | expr [AS? identifier]
    table_ref := identifier [AS? identifier]
    expr      := or_expr
    or_expr   := and_expr (OR and_expr)*
    and_expr  := not_expr (AND not_expr)*
    not_expr  := [NOT] predicate
    predicate := additive [comparison | BETWEEN | IN | LIKE | IS [NOT] NULL]
    additive  := multiplicative (('+'|'-') multiplicative)*
    multiplicative := unary (('*'|'/') unary)*
    unary     := primary | '-' unary
    primary   := literal | NULL | DATE string | INTERVAL string unit
                 | EXTRACT(...) | function '(' [DISTINCT] args ')' | column
                 | '(' expr ')'
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .ast import (
    AndExpr,
    BetweenExpr,
    BinaryOp,
    ColumnName,
    ComparisonExpr,
    DateLiteral,
    ExtractExpr,
    FunctionCall,
    InExpr,
    IntervalLiteral,
    IsNullExpr,
    LikeExpr,
    NotExpr,
    NullLiteral,
    NumberLiteral,
    OrderByItem,
    OrExpr,
    SelectItem,
    SelectStatement,
    StringLiteral,
    SyntaxNode,
    TableRef,
)
from .errors import ParseError
from .lexer import Token, TokenType, tokenize

_AGGREGATES = {"count", "sum", "avg", "min", "max"}
_COMPARISON_OPS = {"=", "<>", "!=", "<", "<=", ">", ">="}


class Parser:
    """Parses one SELECT statement from a token stream."""

    def __init__(self, text: str) -> None:
        self.tokens = tokenize(text)
        self.position = 0

    # -- token helpers -------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self._peek()
        if token.type is not TokenType.END:
            self.position += 1
        return token

    def _expect_keyword(self, *words: str) -> Token:
        token = self._peek()
        if not token.is_keyword(*words):
            raise ParseError("expected %s" % "/".join(words).upper(), token)
        return self._advance()

    def _accept_keyword(self, *words: str) -> bool:
        if self._peek().is_keyword(*words):
            self._advance()
            return True
        return False

    def _expect_punct(self, symbol: str) -> Token:
        token = self._peek()
        if token.type is not TokenType.PUNCTUATION or token.text != symbol:
            raise ParseError("expected %r" % symbol, token)
        return self._advance()

    def _accept_punct(self, symbol: str) -> bool:
        token = self._peek()
        if token.type is TokenType.PUNCTUATION and token.text == symbol:
            self._advance()
            return True
        return False

    def _expect_identifier(self) -> str:
        token = self._peek()
        if token.type is not TokenType.IDENTIFIER:
            raise ParseError("expected identifier", token)
        self._advance()
        return token.text

    # -- entry point -----------------------------------------------------------

    def parse(self) -> SelectStatement:
        """Parse a complete SELECT statement."""
        statement = self._parse_select()
        self._accept_punct(";")
        token = self._peek()
        if token.type is not TokenType.END:
            raise ParseError("unexpected trailing input", token)
        return statement

    # -- clauses ---------------------------------------------------------------

    def _parse_select(self) -> SelectStatement:
        self._expect_keyword("select")
        statement = SelectStatement()
        statement.select_items.append(self._parse_select_item())
        while self._accept_punct(","):
            statement.select_items.append(self._parse_select_item())
        self._expect_keyword("from")
        statement.from_tables.append(self._parse_table_ref())
        while self._accept_punct(","):
            statement.from_tables.append(self._parse_table_ref())
        if self._accept_keyword("where"):
            statement.where = self._parse_expr()
        if self._accept_keyword("group"):
            self._expect_keyword("by")
            statement.group_by.append(self._parse_expr())
            while self._accept_punct(","):
                statement.group_by.append(self._parse_expr())
        if self._accept_keyword("order"):
            self._expect_keyword("by")
            statement.order_by.append(self._parse_order_item())
            while self._accept_punct(","):
                statement.order_by.append(self._parse_order_item())
        if self._accept_keyword("limit"):
            token = self._peek()
            if token.type is not TokenType.NUMBER:
                raise ParseError("expected a number after LIMIT", token)
            self._advance()
            statement.limit = int(float(token.text))
        return statement

    def _parse_select_item(self) -> SelectItem:
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.text == "*":
            self._advance()
            return SelectItem(expression=ColumnName("*"), star=True)
        expression = self._parse_expr()
        alias: Optional[str] = None
        if self._accept_keyword("as"):
            alias = self._expect_identifier()
        elif self._peek().type is TokenType.IDENTIFIER:
            alias = self._expect_identifier()
        return SelectItem(expression=expression, alias=alias)

    def _parse_table_ref(self) -> TableRef:
        table = self._expect_identifier()
        alias: Optional[str] = None
        if self._accept_keyword("as"):
            alias = self._expect_identifier()
        elif self._peek().type is TokenType.IDENTIFIER:
            alias = self._expect_identifier()
        return TableRef(table=table, alias=alias)

    def _parse_order_item(self) -> OrderByItem:
        expression = self._parse_expr()
        descending = False
        if self._accept_keyword("desc"):
            descending = True
        else:
            self._accept_keyword("asc")
        nulls_first: Optional[bool] = None
        # NULLS FIRST / NULLS LAST: "nulls"/"first"/"last" are matched as bare
        # words rather than lexer keywords so they stay usable as identifiers
        # elsewhere in the query.
        if self._accept_word("nulls"):
            if self._accept_word("first"):
                nulls_first = True
            elif self._accept_word("last"):
                nulls_first = False
            else:
                raise ParseError("expected FIRST or LAST after NULLS",
                                 self._peek())
        return OrderByItem(expression=expression, descending=descending,
                           nulls_first=nulls_first)

    def _accept_word(self, word: str) -> bool:
        """Consume a keyword-or-identifier token spelling ``word``."""
        token = self._peek()
        if (token.type in (TokenType.KEYWORD, TokenType.IDENTIFIER)
                and token.text.lower() == word):
            self._advance()
            return True
        return False

    # -- expressions --------------------------------------------------------------

    def _parse_expr(self) -> SyntaxNode:
        return self._parse_or()

    def _parse_or(self) -> SyntaxNode:
        operands = [self._parse_and()]
        while self._accept_keyword("or"):
            operands.append(self._parse_and())
        return operands[0] if len(operands) == 1 else OrExpr(tuple(operands))

    def _parse_and(self) -> SyntaxNode:
        operands = [self._parse_not()]
        while self._accept_keyword("and"):
            operands.append(self._parse_not())
        return operands[0] if len(operands) == 1 else AndExpr(tuple(operands))

    def _parse_not(self) -> SyntaxNode:
        if self._accept_keyword("not"):
            return NotExpr(self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> SyntaxNode:
        left = self._parse_additive()
        token = self._peek()
        if token.is_keyword("is"):
            self._advance()
            negated = self._accept_keyword("not")
            self._expect_keyword("null")
            return IsNullExpr(operand=left, negated=negated)
        if token.type is TokenType.OPERATOR and token.text in _COMPARISON_OPS:
            self._advance()
            right = self._parse_additive()
            op = "<>" if token.text == "!=" else token.text
            return ComparisonExpr(op=op, left=left, right=right)
        if token.is_keyword("between"):
            self._advance()
            low = self._parse_additive()
            self._expect_keyword("and")
            high = self._parse_additive()
            return BetweenExpr(operand=left, low=low, high=high)
        if token.is_keyword("in"):
            self._advance()
            self._expect_punct("(")
            values = [self._parse_additive()]
            while self._accept_punct(","):
                values.append(self._parse_additive())
            self._expect_punct(")")
            return InExpr(operand=left, values=tuple(values))
        negated = False
        if token.is_keyword("not") and self._peek(1).is_keyword("like"):
            self._advance()
            negated = True
            token = self._peek()
        if token.is_keyword("like"):
            self._advance()
            pattern_token = self._peek()
            if pattern_token.type is not TokenType.STRING:
                raise ParseError("expected string pattern after LIKE", pattern_token)
            self._advance()
            return LikeExpr(operand=left, pattern=pattern_token.text,
                            negated=negated)
        return left

    def _parse_additive(self) -> SyntaxNode:
        left = self._parse_multiplicative()
        while True:
            token = self._peek()
            if token.type is TokenType.OPERATOR and token.text in ("+", "-"):
                self._advance()
                right = self._parse_multiplicative()
                left = BinaryOp(op=token.text, left=left, right=right)
            else:
                return left

    def _parse_multiplicative(self) -> SyntaxNode:
        left = self._parse_unary()
        while True:
            token = self._peek()
            if token.type is TokenType.OPERATOR and token.text in ("*", "/"):
                self._advance()
                right = self._parse_unary()
                left = BinaryOp(op=token.text, left=left, right=right)
            else:
                return left

    def _parse_unary(self) -> SyntaxNode:
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.text == "-":
            self._advance()
            operand = self._parse_unary()
            return BinaryOp(op="-", left=NumberLiteral("0"), right=operand)
        return self._parse_primary()

    def _parse_primary(self) -> SyntaxNode:
        token = self._peek()
        if token.type is TokenType.NUMBER:
            self._advance()
            return NumberLiteral(token.text)
        if token.type is TokenType.STRING:
            self._advance()
            return StringLiteral(token.text)
        if token.is_keyword("null"):
            self._advance()
            return NullLiteral()
        if token.is_keyword("date"):
            self._advance()
            value = self._peek()
            if value.type is not TokenType.STRING:
                raise ParseError("expected string after DATE", value)
            self._advance()
            return DateLiteral(value.text)
        if token.is_keyword("interval"):
            self._advance()
            amount_token = self._peek()
            if amount_token.type not in (TokenType.STRING, TokenType.NUMBER):
                raise ParseError("expected amount after INTERVAL", amount_token)
            self._advance()
            unit = self._expect_identifier_or_keyword()
            return IntervalLiteral(amount=int(float(amount_token.text)),
                                   unit=unit.lower().rstrip("s"))
        if token.is_keyword("extract"):
            self._advance()
            self._expect_punct("(")
            field_token = self._advance()
            self._expect_keyword("from")
            operand = self._parse_expr()
            self._expect_punct(")")
            return ExtractExpr(field_name=field_token.text.lower(),
                               operand=operand)
        if token.is_keyword(*_AGGREGATES) or (
                token.type is TokenType.IDENTIFIER
                and self._peek(1).type is TokenType.PUNCTUATION
                and self._peek(1).text == "("):
            return self._parse_function_call()
        if token.type is TokenType.PUNCTUATION and token.text == "(":
            self._advance()
            inner = self._parse_expr()
            self._expect_punct(")")
            return inner
        if token.type is TokenType.IDENTIFIER:
            return self._parse_column()
        raise ParseError("unexpected token", token)

    def _expect_identifier_or_keyword(self) -> str:
        token = self._peek()
        if token.type not in (TokenType.IDENTIFIER, TokenType.KEYWORD):
            raise ParseError("expected identifier", token)
        self._advance()
        return token.text

    def _parse_function_call(self) -> SyntaxNode:
        name_token = self._advance()
        name = name_token.text.lower()
        self._expect_punct("(")
        distinct = self._accept_keyword("distinct")
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.text == "*":
            self._advance()
            self._expect_punct(")")
            return FunctionCall(name=name, args=(), distinct=distinct, star=True)
        args: List[SyntaxNode] = []
        if not (token.type is TokenType.PUNCTUATION and token.text == ")"):
            args.append(self._parse_expr())
            while self._accept_punct(","):
                args.append(self._parse_expr())
        self._expect_punct(")")
        return FunctionCall(name=name, args=tuple(args), distinct=distinct)

    def _parse_column(self) -> ColumnName:
        first = self._expect_identifier()
        if self._accept_punct("."):
            second = self._expect_identifier()
            return ColumnName(name=second, qualifier=first)
        return ColumnName(name=first)


def parse_select(text: str) -> SelectStatement:
    """Parse a SELECT statement and return its syntax tree."""
    return Parser(text).parse()
