"""SQL front end: lexer, parser and binder for the supported subset."""

from .binder import Binder, bind_sql
from .errors import BindError, LexerError, ParseError, SqlError
from .lexer import Token, TokenType, tokenize
from .parser import Parser, parse_select

__all__ = [
    "BindError",
    "Binder",
    "LexerError",
    "ParseError",
    "Parser",
    "SqlError",
    "Token",
    "TokenType",
    "bind_sql",
    "parse_select",
    "tokenize",
]
