"""The plan-contract verifier: proving executor invariants at plan time.

Every bug class PRs 1–5 fixed was an *invariant violation* between the
optimizer and the executor that no tool could see until a golden-file diff
caught it at run time: hash-seed-dependent plan choices, Bloom filters
published past their barrier, sentinel values masquerading as NULLs, hidden
sort keys leaking into results.  This module makes those contracts explicit
and machine-checkable: :func:`verify_plan` walks a finished physical plan
(and optionally the bound :class:`~repro.core.query.QueryBlock` it came
from) and checks everything the executor silently assumes.

Contract catalogue (ids match ``docs/analysis.md``):

``column-resolution``
    Every :class:`~repro.core.expressions.ColumnRef` reachable from the plan
    (scan predicates, join clauses, residuals, projections, group-by keys,
    sort keys, exchange hash keys) resolves against the columns its input
    actually produces, with one stable dtype.
``join-key-dtype``
    Equi-join clauses bind one side to each join input and both sides carry
    join-compatible dtypes (identical numpy dtype, or both numeric).
``mask-closure``
    Null-mask propagation is closed: a column that may carry a null mask is
    only ever consumed by operators registered mask-aware — an unregistered
    operator over maskable input is rejected instead of silently reading
    filler as data (the PR 3 sentinel bug class).
``hidden-sort-keys``
    Hidden ORDER BY carrier columns are produced below the sort, dropped
    exactly once, and never collide with a visible output name (PR 5).
``bloom-barrier``
    Every consumed Bloom filter spec has exactly one producing join, the
    build column lives on that join's build (inner) side, and the consuming
    scan sits in the producer's probe (outer) subtree — the only placement
    for which "build completes before any probe morsel is dispatched" holds
    (PR 2's publication barrier).  Built filters must be consumed, and a
    complete plan carries no pending specs.
``cardinality``
    Estimated cardinalities are finite, non-negative, and monotone under
    selection: Bloom filters and LIMIT never increase rows, aggregation
    never exceeds ``max(input, 1)`` groups, row-preserving operators
    preserve rows.

The verifier is wired behind the ``verify_plans`` knob on
:class:`repro.api.Database` / :class:`repro.api.Session`, resolved like the
adaptive-planner knob stack (session > database > ``REPRO_VERIFY_PLANS``
environment default).  The test suite turns it on globally, so every plan
any test produces is verified; production keeps it off by default.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Type

from ..core.expressions import (
    AggregateCall,
    AggregateFunction,
    Arithmetic,
    Coalesce,
    ColumnRef,
    ExtractYear,
    Literal,
    NullIf,
    Predicate,
    ScalarExpression,
)
from ..core.plans import (
    AggregateNode,
    ExchangeNode,
    JoinNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SortNode,
)
from ..core.query import JoinType, QueryBlock
from ..errors import PlanContractError
from ..storage.catalog import Catalog
from ..storage.types import BOOL, DataType, FLOAT64, INT64, STRING

#: Relative tolerance for cardinality monotonicity checks: estimates are
#: floats accumulated through multiplications, so exact comparisons would
#: flag rounding noise as violations.
REL_TOL = 1e-6

#: Environment variable consulted by :func:`verify_plans_default`.
VERIFY_PLANS_ENV = "REPRO_VERIFY_PLANS"

#: Operators certified to propagate ``(values, null_mask)`` pairs correctly.
#: A new physical operator must be registered here (after actually handling
#: masks) before plans may route maskable columns through it — the
#: ``mask-closure`` contract fails otherwise.
MASK_AWARE_OPERATORS: Tuple[Type[PlanNode], ...] = (
    ScanNode, JoinNode, ExchangeNode, AggregateNode, SortNode, LimitNode,
    ProjectNode,
)


def verify_plans_default() -> bool:
    """The engine-wide ``verify_plans`` default, read from the environment.

    ``REPRO_VERIFY_PLANS=1`` (or ``true`` / ``on`` / ``yes``) turns plan
    verification on for every :class:`repro.api.Database` that does not
    override the knob; anything else leaves it off.  Tests and CI export the
    variable, production deployments do not — verification is a debugging
    net, not a per-query tax.
    """
    value = os.environ.get(VERIFY_PLANS_ENV, "")
    return value.strip().lower() in ("1", "true", "on", "yes")


@dataclass(frozen=True)
class ContractViolation:
    """One broken plan contract.

    Attributes:
        contract: Contract id (see the module docstring catalogue).
        node_path: ``/``-joined path from the plan root to the offending
            node, labelling join children ``outer``/``inner``.
        message: Human-readable description of the violation.
    """

    contract: str
    node_path: str
    message: str

    def __str__(self) -> str:
        return "[%s] %s (at %s)" % (self.contract, self.message,
                                    self.node_path)


@dataclass(frozen=True)
class _ColumnInfo:
    """What the verifier knows about one column a sub-plan emits."""

    dtype: Optional[DataType]
    nullable: bool


#: Column scope of a sub-plan: ``alias.column`` (or bare output name after a
#: projection/aggregation) mapped to dtype + nullability.
_Scope = Dict[str, _ColumnInfo]


def _literal_dtype(value: object) -> Optional[DataType]:
    """Best-effort dtype of a literal (None for the NULL literal)."""
    if isinstance(value, bool):
        return BOOL
    if isinstance(value, int):
        return INT64
    if isinstance(value, float):
        return FLOAT64
    if isinstance(value, str):
        return STRING
    return None


def _join_compatible(left: DataType, right: DataType) -> bool:
    """True if an equi-join between the two dtypes is well defined.

    Identical physical dtypes always compare exactly; distinct numeric types
    (int64 / float64 / date-as-int64) compare through numpy's promotion
    rules.  Everything else — string against number, bool against date —
    silently matches nothing in numpy, so the contract rejects it.
    """
    if left.numpy_dtype == right.numpy_dtype:
        return True
    return left.is_numeric and right.is_numeric


class PlanContractVerifier:
    """Walks one physical plan and collects contract violations.

    The verifier is read-only and side-effect free: it never mutates the
    plan, and one instance can verify any number of plans against the same
    catalog.  ``query`` is optional — when provided, query-level facts
    (visible output names) sharpen the hidden-sort-key contract.
    """

    def __init__(self, catalog: Catalog,
                 query: Optional[QueryBlock] = None) -> None:
        self.catalog = catalog
        self.query = query
        self._violations: List[ContractViolation] = []
        #: filter_id -> (producing JoinNode, its path)
        self._producers: Dict[str, List[Tuple[JoinNode, str]]] = {}
        #: filter_id -> (consuming ScanNode, spec, path)
        self._consumers: Dict[str, List[Tuple[ScanNode, object, str]]] = {}
        #: hidden sort-key name -> paths of the SortNodes that dropped it
        self._dropped: Dict[str, List[str]] = {}

    # ------------------------------------------------------------------

    def check(self, plan: PlanNode) -> List[ContractViolation]:
        """All contract violations in ``plan`` (empty when it verifies)."""
        self._violations = []
        self._producers = {}
        self._consumers = {}
        self._dropped = {}
        root_scope = self._visit(plan, type(plan).__name__)
        self._check_bloom_edges(plan)
        self._check_root(plan, root_scope)
        return list(self._violations)

    def verify(self, plan: PlanNode) -> None:
        """Raise :class:`~repro.errors.PlanContractError` on any violation."""
        violations = self.check(plan)
        if violations:
            name = self.query.name if self.query is not None else "plan"
            raise PlanContractError(
                "%s violates %d plan contract%s: %s"
                % (name, len(violations),
                   "" if len(violations) == 1 else "s", violations[0]),
                violations=tuple(violations))

    # ------------------------------------------------------------------

    def _report(self, contract: str, path: str, message: str) -> None:
        self._violations.append(ContractViolation(contract=contract,
                                                  node_path=path,
                                                  message=message))

    # -- scope construction ---------------------------------------------------

    def _visit(self, node: PlanNode, path: str) -> _Scope:
        """Dispatch on node type; returns the node's output column scope."""
        self._check_cardinality(node, path)
        if isinstance(node, ScanNode):
            return self._visit_scan(node, path)
        if isinstance(node, JoinNode):
            return self._visit_join(node, path)
        if isinstance(node, ExchangeNode):
            return self._visit_exchange(node, path)
        if isinstance(node, AggregateNode):
            return self._visit_aggregate(node, path)
        if isinstance(node, ProjectNode):
            return self._visit_project(node, path)
        if isinstance(node, SortNode):
            return self._visit_sort(node, path)
        if isinstance(node, LimitNode):
            return self._visit_passthrough(node, path)
        return self._visit_unknown(node, path)

    def _child_path(self, path: str, node: PlanNode, index: int) -> str:
        child = node.children[index]
        if isinstance(node, JoinNode):
            label = "outer" if node.children[index] is node.outer else "inner"
            suffix = ".%s" % label
        elif len(node.children) > 1:
            suffix = "[%d]" % index
        else:
            suffix = ""
        name = type(child).__name__
        if isinstance(child, ScanNode):
            name += "(%s)" % child.alias
        return "%s%s/%s" % (path, suffix, name)

    def _visit_scan(self, node: ScanNode, path: str) -> _Scope:
        scope: _Scope = {}
        if not self.catalog.has_table(node.table_name):
            self._report("column-resolution", path,
                         "scan references unknown table %r" % node.table_name)
            return scope
        schema = self.catalog.schema(node.table_name)
        for column in schema.columns:
            scope["%s.%s" % (node.alias, column.name)] = _ColumnInfo(
                dtype=column.dtype, nullable=column.nullable)
        for predicate in node.predicates:
            self._check_refs(predicate, scope, path,
                             within_alias=node.alias)
        for spec in node.bloom_filters:
            if spec.apply_alias != node.alias:
                self._report(
                    "bloom-barrier", path,
                    "scan of %r consumes filter %r applying to alias %r"
                    % (node.alias, spec.filter_id, spec.apply_alias))
            elif not self._resolve(spec.apply_column, scope):
                self._report(
                    "column-resolution", path,
                    "Bloom filter %r probes unresolvable column %s"
                    % (spec.filter_id, spec.apply_column))
            self._consumers.setdefault(spec.filter_id, []).append(
                (node, spec, path))
        return scope

    def _visit_join(self, node: JoinNode, path: str) -> _Scope:
        if node.outer is None or node.inner is None:
            self._report("column-resolution", path,
                         "join is missing an input")
            return {}
        outer_scope = self._visit(node.outer, self._child_path(path, node, 0))
        inner_scope = self._visit(node.inner, self._child_path(path, node, 1))
        for clause in node.clauses:
            sides = []
            for ref in (clause.left, clause.right):
                if self._resolve(ref, outer_scope):
                    sides.append("outer")
                elif self._resolve(ref, inner_scope):
                    sides.append("inner")
                else:
                    sides.append("dangling")
                    self._report("column-resolution", path,
                                 "join key %s resolves on neither input" % ref)
            if sides == ["outer", "outer"] or sides == ["inner", "inner"]:
                self._report("join-key-dtype", path,
                             "both sides of %s bind to the %s input"
                             % (clause, sides[0]))
            left_info = (self._resolve(clause.left, outer_scope)
                         or self._resolve(clause.left, inner_scope))
            right_info = (self._resolve(clause.right, outer_scope)
                          or self._resolve(clause.right, inner_scope))
            if (left_info is not None and right_info is not None
                    and left_info.dtype is not None
                    and right_info.dtype is not None
                    and not _join_compatible(left_info.dtype,
                                             right_info.dtype)):
                self._report(
                    "join-key-dtype", path,
                    "join key dtypes are incompatible: %s is %s, %s is %s"
                    % (clause.left, left_info.dtype,
                       clause.right, right_info.dtype))
        for spec in node.built_filters:
            self._producers.setdefault(spec.filter_id, []).append((node, path))
            if spec.build_alias not in node.inner.relations:
                self._report(
                    "bloom-barrier", path,
                    "filter %r builds from %s but alias %r is not on this "
                    "join's build (inner) side"
                    % (spec.filter_id, spec.build_column, spec.build_alias))
        # Output scope: SEMI / ANTI joins emit probe rows only; outer joins
        # make the non-preserved side's columns nullable (pad batches carry
        # an all-null mask — PR 3 replaced the sentinel padding).
        scope: _Scope = {}
        nullable_outer = node.join_type is JoinType.FULL
        nullable_inner = node.join_type in (JoinType.LEFT, JoinType.FULL)
        for key, info in outer_scope.items():
            scope[key] = _ColumnInfo(info.dtype,
                                     info.nullable or nullable_outer)
        if node.join_type not in (JoinType.SEMI, JoinType.ANTI):
            for key, info in inner_scope.items():
                if key in scope:
                    self._report("column-resolution", path,
                                 "column %r is produced by both join inputs"
                                 % key)
                    continue
                scope[key] = _ColumnInfo(info.dtype,
                                         info.nullable or nullable_inner)
        for predicate in node.residual_predicates:
            self._check_refs(predicate, scope, path)
        return scope

    def _visit_exchange(self, node: ExchangeNode, path: str) -> _Scope:
        if node.child is None:
            self._report("column-resolution", path, "exchange has no input")
            return {}
        scope = self._visit(node.child, self._child_path(path, node, 0))
        for key in node.hash_keys:
            if not self._resolve(key, scope):
                self._report("column-resolution", path,
                             "exchange hash key %s does not resolve" % key)
        self._check_mask_closure(node, scope, path)
        return scope

    def _visit_aggregate(self, node: AggregateNode, path: str) -> _Scope:
        if node.child is None:
            self._report("column-resolution", path, "aggregate has no input")
            return {}
        child_scope = self._visit(node.child, self._child_path(path, node, 0))
        self._check_mask_closure(node, child_scope, path)
        for expression in node.group_by:
            self._check_refs(expression, child_scope, path)
        scope: _Scope = {}
        for item in node.aggregates:
            self._check_refs(item.expression, child_scope, path)
            scope[item.name] = _ColumnInfo(
                dtype=self._expr_dtype(item.expression, child_scope),
                nullable=self._expr_nullable(item.expression, child_scope))
        return scope

    def _visit_project(self, node: ProjectNode, path: str) -> _Scope:
        if node.child is None:
            self._report("column-resolution", path, "projection has no input")
            return {}
        child_scope = self._visit(node.child, self._child_path(path, node, 0))
        self._check_mask_closure(node, child_scope, path)
        scope: _Scope = {}
        for item in node.items:
            self._check_refs(item.expression, child_scope, path)
            scope[item.name] = _ColumnInfo(
                dtype=self._expr_dtype(item.expression, child_scope),
                nullable=self._expr_nullable(item.expression, child_scope))
        return scope

    def _visit_sort(self, node: SortNode, path: str) -> _Scope:
        if node.child is None:
            self._report("column-resolution", path, "sort has no input")
            return {}
        scope = self._visit(node.child, self._child_path(path, node, 0))
        self._check_mask_closure(node, scope, path)
        for item in node.order_by:
            self._check_sort_key(item.expression, scope, path)
        seen = set()
        for name in node.drop_keys:
            if name in seen:
                self._report("hidden-sort-keys", path,
                             "hidden sort key %r is dropped twice by the "
                             "same sort" % name)
                continue
            seen.add(name)
            self._dropped.setdefault(name, []).append(path)
            if name not in scope:
                self._report(
                    "hidden-sort-keys", path,
                    "hidden sort key %r is not produced by the sort input "
                    "(already dropped, or never carried)" % name)
        return {key: info for key, info in scope.items()
                if key not in seen}

    def _visit_passthrough(self, node: PlanNode, path: str) -> _Scope:
        children = node.children
        if not children:
            self._report("column-resolution", path,
                         "%s has no input" % type(node).__name__)
            return {}
        scope = self._visit(children[0], self._child_path(path, node, 0))
        self._check_mask_closure(node, scope, path)
        return scope

    def _visit_unknown(self, node: PlanNode, path: str) -> _Scope:
        """An operator the verifier has no model for: merge child scopes."""
        scope: _Scope = {}
        for index, child in enumerate(node.children):
            scope.update(self._visit(child, self._child_path(path, node,
                                                             index)))
        self._check_mask_closure(node, scope, path)
        return scope

    # -- individual contracts -------------------------------------------------

    def _resolve(self, ref: ColumnRef, scope: _Scope) -> Optional[_ColumnInfo]:
        """Resolve a column reference in ``scope`` (qualified, then bare)."""
        info = scope.get("%s.%s" % (ref.relation, ref.column))
        if info is not None:
            return info
        if not ref.relation:
            return scope.get(ref.column)
        return None

    def _check_refs(self, expression: object, scope: _Scope, path: str,
                    within_alias: Optional[str] = None) -> None:
        """``column-resolution``: every reference binds inside ``scope``."""
        assert isinstance(expression, (ScalarExpression, Predicate))
        for ref in expression.referenced_columns():
            if within_alias is not None and ref.relation != within_alias:
                self._report(
                    "column-resolution", path,
                    "expression over relation %r references foreign column %s"
                    % (within_alias, ref))
                continue
            if self._resolve(ref, scope) is None:
                self._report("column-resolution", path,
                             "column %s does not resolve against this "
                             "operator's input (available: %s)"
                             % (ref, ", ".join(sorted(scope)) or "<none>"))

    def _check_sort_key(self, expression: ScalarExpression, scope: _Scope,
                        path: str) -> None:
        """Sort keys resolve qualified, bare, or by rendered output name.

        Mirrors the executor's tolerant sort-key lookup: after a projection
        or aggregation the batch is keyed by output names, so an ORDER BY
        item may reference a column qualified, by bare output name, or by
        the rendering of the whole expression.
        """
        refs = expression.referenced_columns()
        if all(self._resolve(ref, scope) is not None for ref in refs):
            return
        if isinstance(expression, ColumnRef) and expression.column in scope:
            return
        if str(expression) in scope:
            return
        self._report("column-resolution", path,
                     "sort key %s does not resolve against the sort input "
                     "(available: %s)"
                     % (expression, ", ".join(sorted(scope)) or "<none>"))

    def _check_mask_closure(self, node: PlanNode, input_scope: _Scope,
                            path: str) -> None:
        """``mask-closure``: maskable columns only flow into aware operators."""
        if isinstance(node, MASK_AWARE_OPERATORS):
            return
        nullable = sorted(key for key, info in input_scope.items()
                          if info.nullable)
        if nullable:
            self._report(
                "mask-closure", path,
                "operator %s is not registered mask-aware but consumes "
                "maskable column(s) %s — register it in "
                "repro.analysis.contracts.MASK_AWARE_OPERATORS after "
                "implementing null-mask propagation"
                % (type(node).__name__, ", ".join(nullable)))

    def _check_cardinality(self, node: PlanNode, path: str) -> None:
        """``cardinality``: non-negative, finite, monotone under selection."""
        rows = node.rows
        if not math.isfinite(rows) or rows < 0:
            self._report("cardinality", path,
                         "estimated rows %r is not a finite non-negative "
                         "number" % rows)
            return
        bound = None
        if isinstance(node, ScanNode) and node.is_bloom_scan:
            if not math.isfinite(node.pre_bloom_rows) \
                    or node.pre_bloom_rows < 0:
                self._report("cardinality", path,
                             "pre-Bloom rows %r is not a finite non-negative "
                             "number" % node.pre_bloom_rows)
            elif rows > node.pre_bloom_rows * (1 + REL_TOL):
                self._report(
                    "cardinality", path,
                    "Bloom-filtered scan grows its input: %g rows out of %g "
                    "pre-Bloom rows (filters only ever drop rows)"
                    % (rows, node.pre_bloom_rows))
        elif isinstance(node, LimitNode) and node.child is not None:
            bound = min(node.child.rows, float(node.limit))
        elif isinstance(node, AggregateNode) and node.child is not None:
            bound = max(node.child.rows, 1.0)
        elif isinstance(node, (SortNode, ExchangeNode, ProjectNode)) \
                and node.children:
            # Row-preserving operators must neither invent nor lose rows.
            child_rows = node.children[0].rows
            if abs(rows - child_rows) > max(child_rows, 1.0) * REL_TOL:
                self._report(
                    "cardinality", path,
                    "row-preserving operator changes cardinality: %g rows "
                    "over a %g-row input" % (rows, child_rows))
        if bound is not None and rows > bound * (1 + REL_TOL) + REL_TOL:
            self._report(
                "cardinality", path,
                "cardinality is not monotone under selection: %g rows "
                "exceeds the operator's input bound %g" % (rows, bound))

    def _check_bloom_edges(self, plan: PlanNode) -> None:
        """``bloom-barrier``: producer/consumer edges respect the barrier."""
        for filter_id, consumers in self._consumers.items():
            producers = self._producers.get(filter_id, [])
            for scan, spec, scan_path in consumers:
                if not producers:
                    self._report(
                        "bloom-barrier", scan_path,
                        "filter %r is consumed but no join builds it"
                        % filter_id)
                    continue
                if len(producers) > 1:
                    self._report(
                        "bloom-barrier", scan_path,
                        "filter %r has %d producing joins (%s); the executor "
                        "publishes the first build and silently skips the "
                        "rest" % (filter_id, len(producers),
                                  ", ".join(p for _, p in producers)))
                join, join_path = producers[0]
                if join.outer is None \
                        or all(node is not scan for node in join.outer.walk()):
                    self._report(
                        "bloom-barrier", scan_path,
                        "scan consuming filter %r is not in the probe "
                        "(outer) subtree of its producing join at %s — the "
                        "filter would be probed before its build completes"
                        % (filter_id, join_path))
        for filter_id, producers in self._producers.items():
            if filter_id not in self._consumers:
                for _, join_path in producers:
                    self._report(
                        "bloom-barrier", join_path,
                        "filter %r is built but no scan consumes it"
                        % filter_id)

    def _check_root(self, plan: PlanNode, root_scope: _Scope) -> None:
        """Whole-plan contracts evaluated once the walk is complete."""
        if plan.properties.pending_blooms:
            pending = sorted(spec.filter_id
                             for spec in plan.properties.pending_blooms)
            self._report(
                "bloom-barrier", type(plan).__name__,
                "complete plan still carries pending Bloom specs: %s"
                % ", ".join(pending))
        if self.query is not None and self.query.output:
            visible = {item.name for item in self.query.output}
            hidden = visible.intersection(self._dropped)
            for name in sorted(hidden):
                self._report(
                    "hidden-sort-keys", self._dropped[name][0],
                    "drop key %r is a visible output column of the query"
                    % name)
            for name, paths in sorted(self._dropped.items()):
                if len(paths) > 1:
                    self._report(
                        "hidden-sort-keys", paths[-1],
                        "hidden sort key %r is dropped by %d sort nodes"
                        % (name, len(paths)))
            missing = visible.difference(root_scope)
            if root_scope and missing:
                self._report(
                    "column-resolution", type(plan).__name__,
                    "plan output is missing visible column(s): %s"
                    % ", ".join(sorted(missing)))

    # -- dtype / nullability inference ---------------------------------------

    def _expr_dtype(self, expression: ScalarExpression,
                    scope: _Scope) -> Optional[DataType]:
        """Best-effort output dtype of an expression (None when unknown)."""
        if isinstance(expression, ColumnRef):
            info = self._resolve(expression, scope)
            return info.dtype if info is not None else None
        if isinstance(expression, Literal):
            return _literal_dtype(expression.value)
        if isinstance(expression, Arithmetic):
            return FLOAT64
        if isinstance(expression, ExtractYear):
            return INT64
        if isinstance(expression, Coalesce):
            return self._expr_dtype(expression.operands[0], scope)
        if isinstance(expression, NullIf):
            return self._expr_dtype(expression.left, scope)
        if isinstance(expression, AggregateCall):
            if expression.func is AggregateFunction.COUNT:
                return INT64
            if expression.func in (AggregateFunction.SUM,
                                   AggregateFunction.AVG):
                return FLOAT64
            if expression.operand is not None:
                return self._expr_dtype(expression.operand, scope)
        return None

    def _expr_nullable(self, expression: ScalarExpression,
                       scope: _Scope) -> bool:
        """May the expression's output carry a null mask?"""
        if isinstance(expression, Literal):
            return expression.value is None
        if isinstance(expression, AggregateCall):
            # Every aggregate except COUNT yields NULL for empty groups.
            return expression.func is not AggregateFunction.COUNT
        if isinstance(expression, ColumnRef):
            info = self._resolve(expression, scope)
            return info.nullable if info is not None else False
        if isinstance(expression, Coalesce):
            return all(self._expr_nullable(op, scope)
                       for op in expression.operands)
        if isinstance(expression, NullIf):
            return True
        refs = expression.referenced_columns()
        return any(self._expr_nullable(ref, scope) for ref in refs)


def check_plan(plan: PlanNode, catalog: Catalog,
               query: Optional[QueryBlock] = None) -> List[ContractViolation]:
    """All contract violations in ``plan`` (empty list when it verifies)."""
    return PlanContractVerifier(catalog, query).check(plan)


def verify_plan(plan: PlanNode, catalog: Catalog,
                query: Optional[QueryBlock] = None) -> None:
    """Verify ``plan``; raises :class:`~repro.errors.PlanContractError`."""
    PlanContractVerifier(catalog, query).verify(plan)
