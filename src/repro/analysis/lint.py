"""Engine lint: AST rules enforcing invariants distilled from past bugs.

Each rule encodes a bug class a previous PR actually fixed, so the linter is
a regression net for *patterns*, not just for the specific sites that were
patched (rationale and motivating PRs in ``docs/analysis.md``):

``unordered-iteration``
    No iteration over ``set``/``frozenset`` values whose order can leak into
    plan or output decisions — hash-seed-dependent iteration made plans
    differ across interpreter runs until the enumerator sorted its
    pending-Bloom walks.  Order-insensitive reductions (``sorted``, ``sum``,
    ``min``/``max``, ``any``/``all``, set-to-set operations) are exempt.
``mask-accessor-bypass``
    Inside ``executor/``, no ``np.*`` call may consume raw ``.column(...)``
    values directly: code must go through the ``(values, null_mask)``
    accessors (``resolve_masked`` / ``masked_resolver`` / ``null_mask``) so
    NULL filler can never be read as data.
``sentinel-fill``
    No sentinel fill constants (negative numeric literals or
    ``np.iinfo(...).min`` fed to ``np.full`` / ``ndarray.fill``): sentinels
    masquerading as data were exactly the NULL-handling bug the mask
    representation replaced.
``worker-shared-mutation``
    No mutation of shared state (``self`` attributes, module globals,
    closures via ``global``/``nonlocal``) from code reachable from
    thread-pool-submitted callables — a lightweight per-module call-graph
    "escapes-to-worker" race detector for the morsel executor.  Stores to
    known cross-thread-shared attributes (``_kernel_memo``) are flagged
    everywhere.
``untyped-def``
    In the strictly-typed packages (``core/``, ``executor/``, ``api/``,
    ``analysis/``, ``serving/``, ``faults/``) every ``def`` must annotate
    all parameters
    and its return type — the local enforcement arm of the strict mypy
    configuration (mypy itself is optional in the container; see
    ``make typecheck``).
``blocking-in-async``
    Inside ``serving/``, no ``async def`` body may call the sync engine
    (``execute`` / ``execute_many``), ``time.sleep`` or a future's
    ``.result()`` without ``await`` — any of these stalls the event loop
    for every tenant at once.  Engine work belongs on the worker threads;
    the coroutine side must only ``await``.  Awaited calls and nested sync
    ``def``s (which run on workers) are exempt.
``unaccounted-allocation``
    Inside the spill-capable operator modules (``executor/joins.py``,
    ``executor/aggregate.py``, ``executor/sort.py``), no data-sized array
    constructor (``np.empty`` / ``np.zeros`` / ``np.ones`` / ``np.full``)
    may run in a function without a ``budget`` parameter: allocations that
    bypass the :class:`~repro.executor.memory.MemoryBudget` reservation API
    are invisible to the governor, so a "within budget" query could still
    blow past its grant.  Constant-size allocations (a literal first
    argument) are exempt — they are O(1), not O(rows).
``broad-except-swallow``
    No bare ``except:`` or ``except BaseException:`` whose handler fails to
    ``raise``: a handler that catches *everything* and returns normally
    also swallows ``KeyboardInterrupt``, ``MemoryError`` and injected
    chaos faults, turning crashes into silent wrong answers — the exact
    failure mode the fault-injection framework (:mod:`repro.faults`)
    exists to surface.  Handlers that re-raise (cleanup-then-``raise``)
    are exempt; a handler that deliberately converts the exception into
    another channel (e.g. a future) must carry a suppression explaining
    where the error goes.

Deliberate exceptions carry ``# lint: allow(<rule>) — <reason>`` on the
flagged line or the line above; the reason is mandatory (a bare ``allow``
is itself reported as ``bad-suppression``).  Run as ``make lint`` or
``python -m repro.analysis.lint [paths...]``.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: Packages under strict typing: ``untyped-def`` fires only inside these.
STRICT_TYPED_PACKAGES = ("core", "executor", "api", "analysis", "serving",
                         "faults")

#: Attributes known to hold ``frozenset`` values in the engine.  Deliberately
#: *excludes* ``relations`` — ``PlanNode.relations`` is a frozenset but
#: ``QueryBlock.relations`` is an ordered list, and the two are syntactically
#: indistinguishable at an attribute access.
UNORDERED_ATTRIBUTES = frozenset({"pending_blooms", "delta", "all_relations"})

#: Zero-argument methods known to return ``frozenset`` values.
UNORDERED_METHODS = frozenset({"referenced_relations"})

#: Set-algebra methods whose result is again unordered.
SET_ALGEBRA_METHODS = frozenset({"intersection", "union", "difference",
                                 "symmetric_difference"})

#: Callees that consume an iterable order-insensitively, making iteration
#: order irrelevant for the caller.
ORDER_INSENSITIVE_CONSUMERS = frozenset({
    "sorted", "sum", "min", "max", "any", "all", "len", "set", "frozenset",
})

#: Methods that hand their callable argument to a worker pool: the classic
#: executor submission points plus the morsel-backend dispatchers
#: (``thread_map`` on ``MorselPools`` and the runtime's ``_segment_map``
#: inline-or-pool hook; ``process_map`` takes a kernel *name*, covered by
#: the module-level kernels the process workers import).
WORKER_DISPATCH_METHODS = frozenset({
    "submit", "map", "_map_ordered", "thread_map", "_segment_map",
})

#: Object attributes shared across worker threads: stores to these are
#: flagged everywhere, not only in worker-reachable code (the per-module
#: call graph cannot see cross-module reachability).
SHARED_ATTRIBUTES = frozenset({"_kernel_memo"})

#: Calls that run the sync engine and therefore block the event loop when
#: issued from a coroutine.
BLOCKING_ENGINE_CALLS = frozenset({"execute", "execute_many"})

#: Array constructors that materialise data-sized scratch; in spill-capable
#: operator modules these must run under a ``budget`` parameter so the
#: memory governor sees them.
ACCOUNTED_ALLOCATORS = frozenset({"empty", "zeros", "ones", "full"})

#: Executor modules with a spill path: the ``unaccounted-allocation`` rule
#: fires only inside these.
SPILL_OPERATOR_MODULES = frozenset({"joins.py", "aggregate.py", "sort.py"})

#: All rule ids, in reporting order (``bad-suppression`` guards the
#: suppression mechanism itself).
RULES = ("unordered-iteration", "mask-accessor-bypass", "sentinel-fill",
         "worker-shared-mutation", "untyped-def", "blocking-in-async",
         "unaccounted-allocation", "broad-except-swallow",
         "bad-suppression")

_ALLOW_RE = re.compile(
    r"#\s*lint:\s*allow\(([a-z-]+)\)\s*(?:—|–|-{1,2}|:)?\s*(.*)\s*$")


@dataclass(frozen=True)
class LintFinding:
    """One lint rule violation at a source location."""

    path: str
    line: int
    rule: str
    message: str

    def __str__(self) -> str:
        return "%s:%d: [%s] %s" % (self.path, self.line, self.rule,
                                   self.message)


def _comment_tokens(source: str) -> List[Tuple[int, str]]:
    """``(line, text)`` for every comment token (docstrings excluded)."""
    import io
    import tokenize

    comments: List[Tuple[int, str]] = []
    tokens = tokenize.generate_tokens(io.StringIO(source).readline)
    for token in tokens:
        if token.type == tokenize.COMMENT:
            comments.append((token.start[0], token.string))
    return comments


def _parse_allows(source: str, path: str,
                  ) -> Tuple[Dict[int, Set[str]], List[LintFinding]]:
    """Suppressions per line plus findings for malformed ones.

    An ``allow`` comment covers its own line and the first code line below
    it (skipping the rest of its own comment block), so it works both
    trailing the flagged statement and as a standalone — possibly wrapped —
    comment above it.  Only real comment tokens count — a docstring may
    freely *mention* the suppression syntax.
    """
    allows: Dict[int, Set[str]] = {}
    findings: List[LintFinding] = []
    tokens = _comment_tokens(source)
    comment_lines = {lineno for lineno, _ in tokens}
    for lineno, text in tokens:
        match = _ALLOW_RE.search(text)
        if match is None:
            if "lint: allow" in text:
                findings.append(LintFinding(
                    path=path, line=lineno, rule="bad-suppression",
                    message="malformed suppression comment (expected "
                            "'# lint: allow(<rule>) — <reason>')"))
            continue
        rule, reason = match.group(1), match.group(2).strip()
        if rule not in RULES:
            findings.append(LintFinding(
                path=path, line=lineno, rule="bad-suppression",
                message="suppression names unknown rule %r" % rule))
            continue
        if not reason:
            findings.append(LintFinding(
                path=path, line=lineno, rule="bad-suppression",
                message="suppression of %r has no reason — every deliberate "
                        "exception must say why" % rule))
            continue
        allows.setdefault(lineno, set()).add(rule)
        covered = lineno + 1
        while covered in comment_lines:
            allows.setdefault(covered, set()).add(rule)
            covered += 1
        allows.setdefault(covered, set()).add(rule)
    return allows, findings


def _add_parents(tree: ast.AST) -> None:
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child._lint_parent = node  # type: ignore[attr-defined]


def _parent(node: ast.AST) -> Optional[ast.AST]:
    return getattr(node, "_lint_parent", None)


# ---------------------------------------------------------------------------
# Rule: unordered-iteration
# ---------------------------------------------------------------------------


def _is_unordered(node: ast.AST) -> bool:
    """True if ``node`` evaluates to a set-like (hash-ordered) value."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if isinstance(func, ast.Attribute):
            if func.attr in UNORDERED_METHODS:
                return True
            if func.attr in SET_ALGEBRA_METHODS:
                return True
    if isinstance(node, ast.Attribute) and node.attr in UNORDERED_ATTRIBUTES:
        return True
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        return _is_unordered(node.left) or _is_unordered(node.right)
    return False


def _consumed_order_insensitively(comp: ast.AST) -> bool:
    """True if a comprehension's iteration order cannot reach its consumer."""
    if isinstance(comp, ast.SetComp):
        return True  # the result is itself a set: order never materialises
    parent = _parent(comp)
    if isinstance(parent, ast.Call):
        func = parent.func
        if isinstance(func, ast.Name) \
                and func.id in ORDER_INSENSITIVE_CONSUMERS:
            return True
        if isinstance(func, ast.Attribute) \
                and func.attr in SET_ALGEBRA_METHODS:
            return True
    return False


def _check_unordered_iteration(tree: ast.AST, path: str,
                               findings: List[LintFinding]) -> None:
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            if _is_unordered(node.iter):
                findings.append(LintFinding(
                    path=path, line=node.iter.lineno,
                    rule="unordered-iteration",
                    message="loop iterates a set in hash order; sort the "
                            "elements, rewrite as an order-insensitive "
                            "reduction, or annotate why order cannot "
                            "escape"))
        elif isinstance(node, (ast.ListComp, ast.DictComp, ast.GeneratorExp,
                               ast.SetComp)):
            if _consumed_order_insensitively(node):
                continue
            for generator in node.generators:
                if _is_unordered(generator.iter):
                    findings.append(LintFinding(
                        path=path, line=generator.iter.lineno,
                        rule="unordered-iteration",
                        message="comprehension iterates a set in hash "
                                "order and its result is order-sensitive"))


# ---------------------------------------------------------------------------
# Rule: mask-accessor-bypass
# ---------------------------------------------------------------------------


def _check_mask_accessor_bypass(tree: ast.AST, path: str,
                                findings: List[LintFinding]) -> None:
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "np"):
            continue
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            for inner in ast.walk(arg):
                if (isinstance(inner, ast.Call)
                        and isinstance(inner.func, ast.Attribute)
                        and inner.func.attr == "column"):
                    findings.append(LintFinding(
                        path=path, line=inner.lineno,
                        rule="mask-accessor-bypass",
                        message="np.%s consumes raw .column(...) values; "
                                "use resolve_masked / masked_resolver (or "
                                "pair with null_mask) so NULL filler is "
                                "never read as data" % node.func.attr))


# ---------------------------------------------------------------------------
# Rule: sentinel-fill
# ---------------------------------------------------------------------------


def _is_sentinel_constant(node: ast.AST) -> bool:
    """Negative numeric literal or ``np.iinfo/np.finfo(...).min``."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub) \
            and isinstance(node.operand, ast.Constant) \
            and isinstance(node.operand.value, (int, float)) \
            and node.operand.value != 0:
        return True
    if isinstance(node, ast.Attribute) and node.attr == "min" \
            and isinstance(node.value, ast.Call) \
            and isinstance(node.value.func, ast.Attribute) \
            and node.value.func.attr in ("iinfo", "finfo"):
        return True
    return False


def _check_sentinel_fill(tree: ast.AST, path: str,
                         findings: List[LintFinding]) -> None:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        sentinel: Optional[ast.AST] = None
        if isinstance(func, ast.Attribute) and func.attr == "full" \
                and isinstance(func.value, ast.Name) \
                and func.value.id == "np" and len(node.args) >= 2 \
                and _is_sentinel_constant(node.args[1]):
            sentinel = node.args[1]
        elif isinstance(func, ast.Attribute) and func.attr == "fill" \
                and node.args and _is_sentinel_constant(node.args[0]):
            sentinel = node.args[0]
        if sentinel is not None:
            findings.append(LintFinding(
                path=path, line=node.lineno, rule="sentinel-fill",
                message="sentinel fill constant: NULLs are represented by "
                        "null masks, never by in-band magic values"))


# ---------------------------------------------------------------------------
# Rule: worker-shared-mutation
# ---------------------------------------------------------------------------


def _function_defs(tree: ast.AST) -> Dict[str, List[ast.AST]]:
    """Every named def in the module, keyed by bare name."""
    defs: Dict[str, List[ast.AST]] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            defs.setdefault(node.name, []).append(node)
    return defs


def _called_names(fn: ast.AST) -> Set[str]:
    """Names a def calls via ``name(...)`` or ``self.name(...)``."""
    names: Set[str] = set()
    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name):
            names.add(func.id)
        elif isinstance(func, ast.Attribute) \
                and isinstance(func.value, ast.Name) \
                and func.value.id == "self":
            names.add(func.attr)
    return names


def _worker_entry_points(tree: ast.AST) -> Tuple[Set[str], List[ast.Lambda]]:
    """Callables handed to the thread pool: names + inline lambdas."""
    names: Set[str] = set()
    lambdas: List[ast.Lambda] = []
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in WORKER_DISPATCH_METHODS
                and node.args):
            continue
        target = node.args[0]
        if isinstance(target, ast.Name):
            names.add(target.id)
        elif isinstance(target, ast.Attribute):
            names.add(target.attr)
        elif isinstance(target, ast.Lambda):
            lambdas.append(target)
    return names, lambdas


def _module_globals(tree: ast.Module) -> Set[str]:
    """Names bound by assignment at module top level."""
    names: Set[str] = set()
    for stmt in tree.body:
        targets: List[ast.AST] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            targets = [stmt.target]
        for target in targets:
            for node in ast.walk(target):
                if isinstance(node, ast.Name):
                    names.add(node.id)
    return names


def _store_root(node: ast.AST) -> Optional[ast.Name]:
    """The base Name of an Attribute/Subscript store target."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node if isinstance(node, ast.Name) else None


def _shared_attribute_store(target: ast.AST) -> Optional[str]:
    """The shared attribute name if the store hits one, else ``None``."""
    for node in ast.walk(target):
        if isinstance(node, ast.Attribute) and node.attr in SHARED_ATTRIBUTES:
            return node.attr
    return None


def _in_constructor(node: ast.AST) -> bool:
    """True if the statement sits inside ``__init__``/``__post_init__``."""
    current = _parent(node)
    while current is not None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return current.name in ("__init__", "__post_init__")
        current = _parent(current)
    return False


def _check_worker_body(fn: ast.AST, own_name: Optional[str],
                       module_globals: Set[str], path: str,
                       findings: List[LintFinding]) -> None:
    """Flag shared-state mutation inside one worker-reachable callable."""
    for node in ast.walk(fn):
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            findings.append(LintFinding(
                path=path, line=node.lineno, rule="worker-shared-mutation",
                message="%s rebinds enclosing state from code reachable "
                        "from a thread-pool worker"
                        % type(node).__name__.lower()))
            continue
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            root = _store_root(target)
            if root is None:
                continue
            if root.id == "self" and not isinstance(target, ast.Name):
                findings.append(LintFinding(
                    path=path, line=node.lineno,
                    rule="worker-shared-mutation",
                    message="store to self.* from code reachable from a "
                            "thread-pool worker (in %r): workers must only "
                            "touch per-morsel state"
                            % (own_name or "<lambda>")))
            elif isinstance(target, ast.Name) \
                    and target.id in module_globals:
                findings.append(LintFinding(
                    path=path, line=node.lineno,
                    rule="worker-shared-mutation",
                    message="store to module global %r from code reachable "
                            "from a thread-pool worker" % target.id))


def _check_worker_shared_mutation(tree: ast.Module, path: str,
                                  findings: List[LintFinding]) -> None:
    entry_names, entry_lambdas = _worker_entry_points(tree)
    defs = _function_defs(tree)
    module_globals = _module_globals(tree)
    # Transitive closure over the per-module call graph.
    reachable: Set[str] = set()
    frontier = {name for name in entry_names if name in defs}
    for lam in entry_lambdas:
        frontier |= {name for name in _called_names(lam) if name in defs}
    while frontier:
        name = frontier.pop()
        if name in reachable:
            continue
        reachable.add(name)
        for fn in defs[name]:
            frontier |= {called for called in _called_names(fn)
                         if called in defs and called not in reachable}
    for lam in entry_lambdas:
        _check_worker_body(lam, None, module_globals, path, findings)
    for name in sorted(reachable):
        for fn in defs[name]:
            _check_worker_body(fn, name, module_globals, path, findings)
    # Stores to attributes shared across threads are flagged regardless of
    # the (per-module) call graph: cross-module reachability is invisible
    # to it, and these attributes exist precisely to be shared.  Stores
    # inside ``__init__``/``__post_init__`` are construction, which
    # happens-before any sharing, and stay exempt.
    for node in ast.walk(tree):
        targets = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            attr = _shared_attribute_store(target)
            if attr is not None and not _in_constructor(node):
                findings.append(LintFinding(
                    path=path, line=node.lineno,
                    rule="worker-shared-mutation",
                    message="store into %r, which is shared across worker "
                            "threads" % attr))


# ---------------------------------------------------------------------------
# Rule: untyped-def
# ---------------------------------------------------------------------------


def _check_untyped_defs(tree: ast.AST, path: str,
                        findings: List[LintFinding]) -> None:
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        args = node.args
        all_args = (args.posonlyargs + args.args + args.kwonlyargs
                    + ([args.vararg] if args.vararg else [])
                    + ([args.kwarg] if args.kwarg else []))
        unannotated = [a.arg for a in all_args if a.annotation is None]
        # The receiver of a method carries its type implicitly.
        if unannotated and unannotated[0] in ("self", "cls") \
                and (args.posonlyargs + args.args) \
                and (args.posonlyargs + args.args)[0].arg == unannotated[0]:
            unannotated = unannotated[1:]
        missing = []
        if unannotated:
            missing.append("parameter(s) %s" % ", ".join(unannotated))
        if node.returns is None:
            missing.append("return type")
        if missing:
            findings.append(LintFinding(
                path=path, line=node.lineno, rule="untyped-def",
                message="def %s is missing annotations: %s (this package "
                        "is strictly typed)"
                        % (node.name, "; ".join(missing))))


# ---------------------------------------------------------------------------
# Rule: blocking-in-async
# ---------------------------------------------------------------------------


def _coroutine_body(fn: ast.AsyncFunctionDef) -> Iterable[ast.AST]:
    """Nodes that run on the event loop inside one ``async def``.

    Nested ``def``s and lambdas are skipped: they execute wherever they are
    *called* (typically a worker thread), not in this coroutine.  Nested
    ``async def``s are skipped too — the outer walk visits them as
    coroutines of their own.
    """
    stack = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _blocking_call_reason(node: ast.Call) -> Optional[str]:
    """Why this call blocks the event loop, or ``None`` if it does not."""
    func = node.func
    if isinstance(func, ast.Attribute):
        if func.attr == "sleep" and isinstance(func.value, ast.Name) \
                and func.value.id == "time":
            return "time.sleep stalls the event loop; await asyncio.sleep"
        if func.attr == "result":
            return ".result() blocks on a future; await " \
                   "asyncio.wrap_future(...) instead"
        if func.attr in BLOCKING_ENGINE_CALLS:
            return "sync %s(...) runs the engine on the event loop; " \
                   "dispatch to the worker pool and await the future" \
                   % func.attr
    elif isinstance(func, ast.Name) and func.id in BLOCKING_ENGINE_CALLS:
        return "sync %s(...) runs the engine on the event loop; dispatch " \
               "to the worker pool and await the future" % func.id
    return None


def _check_blocking_in_async(tree: ast.AST, path: str,
                             findings: List[LintFinding]) -> None:
    for fn in ast.walk(tree):
        if not isinstance(fn, ast.AsyncFunctionDef):
            continue
        for node in _coroutine_body(fn):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(_parent(node), ast.Await):
                continue
            reason = _blocking_call_reason(node)
            if reason is not None:
                findings.append(LintFinding(
                    path=path, line=node.lineno, rule="blocking-in-async",
                    message="blocking call inside async def %s: %s"
                            % (fn.name, reason)))


# ---------------------------------------------------------------------------
# Rule: unaccounted-allocation
# ---------------------------------------------------------------------------


def _is_constant_size(node: ast.AST) -> bool:
    """Literal int (or tuple of literal ints) shape: an O(1) allocation."""
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return True
    if isinstance(node, ast.Tuple):
        return bool(node.elts) and all(
            isinstance(elt, ast.Constant) and isinstance(elt.value, int)
            for elt in node.elts)
    return False


def _enclosing_function(node: ast.AST) -> Optional[ast.AST]:
    current = _parent(node)
    while current is not None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return current
        current = _parent(current)
    return None


def _has_budget_parameter(fn: ast.AST) -> bool:
    args = fn.args  # type: ignore[attr-defined]
    all_args = (args.posonlyargs + args.args + args.kwonlyargs
                + ([args.vararg] if args.vararg else [])
                + ([args.kwarg] if args.kwarg else []))
    return any(arg.arg == "budget" for arg in all_args)


def _check_unaccounted_allocation(tree: ast.AST, path: str,
                                  findings: List[LintFinding]) -> None:
    """Data-sized ``np.*`` constructors outside budget-carrying functions.

    A function that takes a ``budget`` parameter participates in the
    reservation protocol — its caller reserved (or the function reserves)
    the bytes it materialises.  A data-sized allocation anywhere else in a
    spill-capable operator module bypasses the governor and must either
    move under the budget or carry a suppression explaining why the bytes
    are already accounted for.
    """
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ACCOUNTED_ALLOCATORS
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "np"):
            continue
        if node.args and _is_constant_size(node.args[0]):
            continue
        fn = _enclosing_function(node)
        if fn is not None and _has_budget_parameter(fn):
            continue
        where = getattr(fn, "name", "<module>")
        findings.append(LintFinding(
            path=path, line=node.lineno, rule="unaccounted-allocation",
            message="np.%s allocates data-sized memory in %r, which has no "
                    "'budget' parameter: the reservation API cannot see "
                    "these bytes; thread the MemoryBudget through or "
                    "annotate why they are already accounted"
                    % (node.func.attr, where)))


# ---------------------------------------------------------------------------
# Rule: broad-except-swallow
# ---------------------------------------------------------------------------


def _catches_everything(handler: ast.ExceptHandler) -> Optional[str]:
    """What makes this handler catch-all, or ``None`` if it is typed.

    Only the genuinely unbounded forms count: a bare ``except:`` and any
    clause naming ``BaseException`` (alone or in a tuple).  ``except
    Exception`` stays legal — it already lets ``KeyboardInterrupt`` and
    ``SystemExit`` through, which is the property this rule protects.
    """
    if handler.type is None:
        return "bare except:"
    clauses = handler.type.elts if isinstance(handler.type, ast.Tuple) \
        else [handler.type]
    for clause in clauses:
        if isinstance(clause, ast.Name) and clause.id == "BaseException":
            return "except BaseException"
    return None


def _handler_reraises(handler: ast.ExceptHandler) -> bool:
    """True if any code path in the handler body contains ``raise``.

    Nested ``def``s and lambdas are excluded — a ``raise`` inside a
    callback the handler merely *defines* does not re-raise the caught
    exception.
    """
    stack = list(handler.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        if isinstance(node, ast.Raise):
            return True
        stack.extend(ast.iter_child_nodes(node))
    return False


def _check_broad_except_swallow(tree: ast.AST, path: str,
                                findings: List[LintFinding]) -> None:
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        broad = _catches_everything(node)
        if broad is None or _handler_reraises(node):
            continue
        findings.append(LintFinding(
            path=path, line=node.lineno, rule="broad-except-swallow",
            message="%s swallows every exception (KeyboardInterrupt, "
                    "MemoryError, injected faults) without re-raising; "
                    "catch the specific types, re-raise, or suppress with "
                    "a reason saying where the error goes" % broad))


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def _in_strict_package(path: str) -> bool:
    parts = Path(path).parts
    if "repro" not in parts:
        return False
    tail = parts[parts.index("repro") + 1:]
    return bool(tail) and tail[0] in STRICT_TYPED_PACKAGES


def _in_executor(path: str) -> bool:
    return "executor" in Path(path).parts


def _in_serving(path: str) -> bool:
    return "serving" in Path(path).parts


def _in_spill_operator(path: str) -> bool:
    p = Path(path)
    return "executor" in p.parts and p.name in SPILL_OPERATOR_MODULES


def lint_source(source: str, path: str = "<string>",
                strict_types: Optional[bool] = None,
                executor_rules: Optional[bool] = None,
                async_rules: Optional[bool] = None,
                spill_rules: Optional[bool] = None) -> List[LintFinding]:
    """Lint one module's source text; returns unsuppressed findings.

    ``strict_types`` / ``executor_rules`` / ``async_rules`` /
    ``spill_rules`` force the path-derived defaults for the
    ``untyped-def``, ``mask-accessor-bypass``, ``blocking-in-async`` and
    ``unaccounted-allocation`` rules (used by tests linting inline
    snippets).
    """
    if strict_types is None:
        strict_types = _in_strict_package(path)
    if executor_rules is None:
        executor_rules = _in_executor(path)
    if async_rules is None:
        async_rules = _in_serving(path)
    if spill_rules is None:
        spill_rules = _in_spill_operator(path)
    tree = ast.parse(source, filename=path)
    _add_parents(tree)
    allows, findings = _parse_allows(source, path)
    raw: List[LintFinding] = []
    _check_unordered_iteration(tree, path, raw)
    _check_sentinel_fill(tree, path, raw)
    _check_worker_shared_mutation(tree, path, raw)
    _check_broad_except_swallow(tree, path, raw)
    if executor_rules:
        _check_mask_accessor_bypass(tree, path, raw)
    if strict_types:
        _check_untyped_defs(tree, path, raw)
    if async_rules:
        _check_blocking_in_async(tree, path, raw)
    if spill_rules:
        _check_unaccounted_allocation(tree, path, raw)
    for finding in raw:
        if finding.rule in allows.get(finding.line, ()):
            continue
        findings.append(finding)
    findings.sort(key=lambda f: (f.line, f.rule, f.message))
    return findings


def lint_paths(paths: Iterable[str]) -> List[LintFinding]:
    """Lint every ``.py`` file under the given files/directories."""
    files: List[Path] = []
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    findings: List[LintFinding] = []
    for file_path in files:
        source = file_path.read_text(encoding="utf-8")
        findings.extend(lint_source(source, str(file_path)))
    return findings


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: lint the given paths (default ``src/repro``)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="Engine lint: repo-specific invariant rules "
                    "(see docs/analysis.md).")
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to lint "
                             "(default: src/repro)")
    options = parser.parse_args(argv)
    findings = lint_paths(options.paths)
    for finding in findings:
        print(finding)
    if findings:
        print("%d finding(s)." % len(findings))
        return 1
    print("engine lint: clean.")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
