"""Static analysis for the repro engine: plan contracts + engine lint.

Two complementary passes guard the invariants the executor assumes but
cannot check itself:

* :mod:`repro.analysis.contracts` — the **plan-contract verifier**, a walker
  over optimized plan trees run at plan time behind the ``verify_plans``
  knob.  It raises :class:`~repro.errors.PlanContractError` naming the
  offending node when a plan would break an executor contract (dangling
  column references, dtype-incompatible join keys, Bloom filters probed
  before their build, hidden sort keys dropped twice, non-monotone
  cardinalities, open null-mask flows).
* :mod:`repro.analysis.lint` — the **engine lint**, an AST-based checker
  (``make lint`` / ``python -m repro.analysis.lint``) enforcing
  repo-specific source rules distilled from past bugs: no unordered-
  collection iteration feeding plan decisions, no raw ``np.*`` access to
  batch columns that bypasses the ``(values, null_mask)`` accessors, no
  sentinel-fill constants, no shared-state mutation from morsel workers,
  and no unannotated defs in the strictly-typed packages.

See ``docs/analysis.md`` for the contract catalogue, the lint rules with
the PR that motivated each, and the suppression policy.
"""

from .contracts import (
    ContractViolation,
    PlanContractVerifier,
    check_plan,
    verify_plan,
    verify_plans_default,
)
from .lint import LintFinding, lint_paths, lint_source

__all__ = [
    "ContractViolation",
    "LintFinding",
    "PlanContractVerifier",
    "check_plan",
    "lint_paths",
    "lint_source",
    "verify_plan",
    "verify_plans_default",
]
