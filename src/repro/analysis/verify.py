"""Run the plan-contract verifier over the TPC-H golden-plan corpus.

The CLI twin of ``scripts/dump_plan_golden.py``: it plans every analysed
TPC-H query at the paper's SF100 statistics under all four optimizer
configurations (no-BF, BF-Post, BF-CBO with paper defaults, BF-CBO with
Heuristic 7) and verifies each plan against the contract catalogue in
:mod:`repro.analysis.contracts`.  CI runs this so a planner change that
starts emitting contract-violating plans fails the build even if no golden
file happens to change shape.

Run from the repository root::

    PYTHONPATH=src python -m repro.analysis.verify

Exit status is non-zero if any plan has violations.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..core.heuristics import BfCboSettings
from ..core.optimizer import Optimizer, OptimizerMode
from .contracts import ContractViolation, PlanContractVerifier


def _configurations() -> List[Tuple[str, OptimizerMode,
                                    Optional[BfCboSettings]]]:
    return [
        ("no-bf", OptimizerMode.NO_BF, None),
        ("bf-post", OptimizerMode.BF_POST, None),
        ("bf-cbo", OptimizerMode.BF_CBO, BfCboSettings.paper_defaults()),
        ("bf-cbo-h7", OptimizerMode.BF_CBO, BfCboSettings.with_heuristic7()),
    ]


def verify_golden_corpus(scale_factor: float = 100.0,
                         ) -> List[Tuple[str, str, ContractViolation]]:
    """Verify every (query, configuration) plan of the golden corpus.

    Returns ``(query_name, configuration_label, violation)`` triples —
    empty when the whole corpus verifies clean.
    """
    from ..tpch import TpchWorkload  # deferred: pulls in the generator

    workload = TpchWorkload.statistics_only(scale_factor=scale_factor)
    optimizer = Optimizer(workload.catalog)
    failures: List[Tuple[str, str, ContractViolation]] = []
    for number in workload.query_numbers:
        query = workload.query(number)
        verifier = PlanContractVerifier(workload.catalog, query)
        for label, mode, settings in _configurations():
            result = optimizer.optimize(query, mode, settings)
            for violation in verifier.check(result.plan):
                failures.append((query.name, label, violation))
    return failures


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: verify the golden corpus, report violations."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.verify",
        description="Plan-contract verification over the TPC-H golden-plan "
                    "corpus (see docs/analysis.md).")
    parser.add_argument("--scale-factor", type=float, default=100.0,
                        help="statistics scale factor (default: 100, "
                             "matching the golden plans)")
    options = parser.parse_args(argv)
    failures = verify_golden_corpus(scale_factor=options.scale_factor)
    for query_name, label, violation in failures:
        print("%s/%s: %s" % (query_name, label, violation))
    if failures:
        print("%d contract violation(s)." % len(failures))
        return 1
    print("plan contracts: golden corpus verifies clean.")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
