"""Command-line entry point: ``python -m repro.analysis <command>``.

Commands:

``lint``
    Run the engine lint suite (see :mod:`repro.analysis.lint`).
``verify``
    Run the plan-contract verifier over the TPC-H golden-plan corpus
    (see :mod:`repro.analysis.verify`).
"""

from __future__ import annotations

import sys
from typing import List, Optional

from . import lint, verify


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__.strip())
        return 0 if argv else 2
    command, rest = argv[0], argv[1:]
    if command == "lint":
        return lint.main(rest)
    if command == "verify":
        return verify.main(rest)
    print("unknown command %r (expected 'lint' or 'verify')" % command,
          file=sys.stderr)
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
