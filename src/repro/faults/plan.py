"""Deterministic fault injection: seeded plans over named injection sites.

A :class:`FaultPlan` is a declarative script of failures — "the third
process-pool submission breaks the pool", "every shared-memory allocation
hits ENOSPC" — threaded through :class:`~repro.executor.context.
ExecutionContext` (``Database(fault_plan=...)``) so the recovery machinery
built in this package's sibling layers can be driven and asserted
deterministically:

* **executor supervision** rebuilds a broken process pool once and re-runs
  only the failed morsel spans (``repro.executor.backend``);
* the **circuit breaker** trips the process backend over to threads after
  repeated failures (``repro.executor.breaker``);
* **shared-memory degradation** falls back to in-band pickled arguments when
  a segment cannot be allocated or attached (``repro.executor.shm``);
* **serving retries** re-run requests that failed with a
  :class:`~repro.errors.TransientError` (``repro.serving.retry``).

Injection is *deterministic*: every site keeps a hit counter and a spec
fires on exact hit ordinals (``after`` skips, ``times`` caps), with an
optional ``probability`` drawn from a per-spec ``random.Random`` seeded from
``(plan seed, site, spec index)`` — the same plan against the same execution
produces the same faults, which is what lets the chaos suite assert
bit-identical results and exact counter values.  When no plan is installed
every site costs a single ``is None`` check — zero overhead in production.

Sites (see ``docs/robustness.md`` for the full table):

========================  ===================================================
``morsel-dispatch``        before each thread-pool morsel submission (and on
                           the serial inline path)
``pool-submit``            before each process-pool task submission
``shm-allocate``           before a shared-memory segment is created
``shm-attach``             after segment creation, simulating a worker-side
                           attach failure (the segment is unlinked and the
                           export degrades to inline transport)
``result-cache-get``       before a result-cache lookup (degrades to a miss)
``result-cache-put``       before a result-cache store (the store is skipped)
``admission-dequeue``      when a serving worker dequeues a request (the
                           dequeue is skipped and retried)
``memory-pressure``        when an operator asks its per-query memory budget
                           for a reservation (the grant is denied, forcing
                           the operator down its spill path)
========================  ===================================================
"""

from __future__ import annotations

import errno
import random
import threading
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import TransientError

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "INJECTION_SITES",
    "KIND_SHM_ENOSPC",
    "KIND_TRANSIENT",
    "KIND_WORKER_CRASH",
    "SITE_ADMISSION_DEQUEUE",
    "SITE_MEMORY_PRESSURE",
    "SITE_MORSEL_DISPATCH",
    "SITE_POOL_SUBMIT",
    "SITE_RESULT_CACHE_GET",
    "SITE_RESULT_CACHE_PUT",
    "SITE_SHM_ALLOCATE",
    "SITE_SHM_ATTACH",
]

SITE_MORSEL_DISPATCH = "morsel-dispatch"
SITE_POOL_SUBMIT = "pool-submit"
SITE_SHM_ALLOCATE = "shm-allocate"
SITE_SHM_ATTACH = "shm-attach"
SITE_RESULT_CACHE_GET = "result-cache-get"
SITE_RESULT_CACHE_PUT = "result-cache-put"
SITE_ADMISSION_DEQUEUE = "admission-dequeue"
SITE_MEMORY_PRESSURE = "memory-pressure"

#: Every named injection site a :class:`FaultSpec` may target.
INJECTION_SITES = (
    SITE_MORSEL_DISPATCH,
    SITE_POOL_SUBMIT,
    SITE_SHM_ALLOCATE,
    SITE_SHM_ATTACH,
    SITE_RESULT_CACHE_GET,
    SITE_RESULT_CACHE_PUT,
    SITE_ADMISSION_DEQUEUE,
    SITE_MEMORY_PRESSURE,
)

#: A retryable executor failure (:class:`~repro.errors.TransientError`).
KIND_TRANSIENT = "transient"
#: A worker-process death: raises ``BrokenProcessPool`` so the executor's
#: supervision path (pool rebuild + morsel re-run) engages exactly as it
#: would on a real crash.  Only meaningful at ``pool-submit``.
KIND_WORKER_CRASH = "worker-crash"
#: Shared-memory pressure: raises ``OSError(ENOSPC)``, which the shm sites
#: catch and degrade on.  Only meaningful at ``shm-allocate``/``shm-attach``.
KIND_SHM_ENOSPC = "shm-enospc"

#: Every fault kind a :class:`FaultSpec` may inject.
FAULT_KINDS = (KIND_TRANSIENT, KIND_WORKER_CRASH, KIND_SHM_ENOSPC)


@dataclass(frozen=True)
class FaultSpec:
    """One scripted fault: where, what, and on which hits it fires.

    Args:
        site: Injection site name (one of :data:`INJECTION_SITES`).
        kind: What to inject (one of :data:`FAULT_KINDS`).
        times: Maximum number of injections (``<= 0`` = unlimited).
        after: Eligible site hits skipped before the first injection —
            ``after=2`` leaves the first two hits untouched.
        probability: Chance an eligible hit actually injects, drawn from a
            deterministic per-spec stream seeded by the plan (1.0 = always).
    """

    site: str
    kind: str = KIND_TRANSIENT
    times: int = 1
    after: int = 0
    probability: float = 1.0

    def __post_init__(self) -> None:
        if self.site not in INJECTION_SITES:
            raise ValueError("unknown injection site %r; expected one of %r"
                             % (self.site, INJECTION_SITES))
        if self.kind not in FAULT_KINDS:
            raise ValueError("unknown fault kind %r; expected one of %r"
                             % (self.kind, FAULT_KINDS))
        if self.after < 0:
            raise ValueError("after must be >= 0, got %r" % self.after)
        if not 0.0 < self.probability <= 1.0:
            raise ValueError("probability must be in (0, 1], got %r"
                             % self.probability)


def _spec_seed(seed: int, site: str, index: int) -> int:
    """Stable per-spec RNG seed (``hash()`` is interpreter-seed dependent)."""
    return zlib.crc32(("%d:%s:%d" % (seed, site, index)).encode("utf-8"))


class FaultPlan:
    """A seeded, thread-safe schedule of faults over named injection sites.

    The plan is consulted (``fire``/``check``) at every instrumented site by
    the executor, the shared-memory arena, the result cache and the serving
    queue; it decides deterministically whether that hit injects.  Counters
    (:meth:`counters` / :meth:`hit_counts`) record exactly what fired where,
    which is what the chaos suite compares component counters against.

    A plan instance is stateful — its hit counters advance as the workload
    runs — so use one fresh plan per scenario.  It is safe to share across
    the threads of one engine (everything is guarded by one lock), but it is
    **not** shipped into worker processes: injection happens parent-side so
    counters stay exact.
    """

    def __init__(self, specs: Sequence[FaultSpec], *, seed: int = 0) -> None:
        self.seed = seed
        self._specs: Tuple[FaultSpec, ...] = tuple(specs)
        self._by_site: Dict[str, List[int]] = {}
        for index, spec in enumerate(self._specs):
            self._by_site.setdefault(spec.site, []).append(index)
        self._rng: Dict[int, random.Random] = {
            index: random.Random(_spec_seed(seed, spec.site, index))
            for index, spec in enumerate(self._specs)
            if spec.probability < 1.0}
        self._hits: Dict[str, int] = {site: 0 for site in self._by_site}
        self._injected: Dict[int, int] = {index: 0
                                          for index in range(len(self._specs))}
        self._lock = threading.Lock()

    @property
    def specs(self) -> Tuple[FaultSpec, ...]:
        return self._specs

    # -- the decision point -------------------------------------------------

    def fire(self, site: str) -> Optional[FaultSpec]:
        """Record one hit of ``site`` and return the spec that fires, if any.

        The soft form of :meth:`check` for sites that degrade instead of
        raising (shm fallback, cache miss, dequeue retry).  First matching
        spec wins; the decision depends only on the plan's seed and the hit
        ordinal, never on wall-clock time or thread identity.
        """
        with self._lock:
            if site not in self._by_site:
                return None
            hit = self._hits[site]
            self._hits[site] = hit + 1
            for index in self._by_site[site]:
                spec = self._specs[index]
                if hit < spec.after:
                    continue
                if 0 < spec.times <= self._injected[index]:
                    continue
                rng = self._rng.get(index)
                if rng is not None and rng.random() >= spec.probability:
                    continue
                self._injected[index] += 1
                return spec
        return None

    def check(self, site: str) -> None:
        """Raise the scripted error if ``site``'s current hit injects."""
        spec = self.fire(site)
        if spec is not None:
            raise self.error_for(spec)

    @staticmethod
    def error_for(spec: FaultSpec) -> BaseException:
        """The exception instance a firing ``spec`` injects."""
        if spec.kind == KIND_WORKER_CRASH:
            from concurrent.futures.process import BrokenProcessPool

            return BrokenProcessPool("injected worker crash at %r"
                                     % spec.site)
        if spec.kind == KIND_SHM_ENOSPC:
            return OSError(errno.ENOSPC,
                           "injected shared-memory pressure at %r"
                           % spec.site)
        return TransientError("injected transient fault at %r" % spec.site)

    # -- observability ------------------------------------------------------

    def counters(self) -> Dict[str, int]:
        """Injections per site (zero for scripted-but-silent sites)."""
        with self._lock:
            totals = {site: 0 for site in self._by_site}
            for index, count in self._injected.items():
                totals[self._specs[index].site] += count
            return totals

    def hit_counts(self) -> Dict[str, int]:
        """Raw hit counts per scripted site (fired or not)."""
        with self._lock:
            return dict(self._hits)

    @property
    def total_injected(self) -> int:
        """Total faults injected across every site."""
        with self._lock:
            return sum(self._injected.values())

    def __repr__(self) -> str:
        return "FaultPlan(seed=%d, specs=%r)" % (self.seed, list(self._specs))
