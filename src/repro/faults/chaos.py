"""Chaos kernels: genuine process-level failures for the fault suite.

:class:`~repro.faults.plan.FaultPlan` injects failures parent-side so its
counters stay exact, but that only *simulates* a worker death.  The kernels
here are registered by name (``"repro.faults.chaos:kill_worker"``) exactly
like production kernels, so spawn-based workers can import and run them —
letting the chaos suite kill a real worker process and assert the executor's
supervision path (pool rebuild + morsel re-run) against the real
``BrokenProcessPool`` the standard library raises.

Never dispatch these outside a test.
"""

from __future__ import annotations

import os

__all__ = ["echo", "kill_worker", "kill_worker_once"]


def kill_worker(code: int = 17) -> None:
    """Terminate the calling worker process immediately.

    ``os._exit`` bypasses ``atexit`` and exception handling — the closest
    stand-in for a segfault or OOM kill that pure Python can produce.  The
    parent observes ``BrokenProcessPool`` on the in-flight futures.
    """
    os._exit(code)


def kill_worker_once(latch_path: str, value: object) -> object:
    """Die on the first call across all workers, echo afterwards.

    The latch is an ``O_EXCL``-created file, so exactly one worker (the one
    that wins the create) dies even under concurrent dispatch; every later
    call — including the supervision re-run after the pool rebuild — sees
    the latch and behaves like :func:`echo`.  This is how the chaos suite
    asserts recovery against a *real* ``BrokenProcessPool`` while still
    letting the retried dispatch complete.
    """
    try:
        fd = os.open(latch_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return value
    os.close(fd)
    os._exit(23)


def echo(value: object) -> object:
    """Return ``value`` unchanged; a healthy-worker probe for tests."""
    return value
