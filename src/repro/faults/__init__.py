"""Deterministic fault injection for the executor and serving tiers.

See :mod:`repro.faults.plan` for the model and ``docs/robustness.md`` for
how each injection site maps onto the engine's recovery machinery.
"""

from .plan import (
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    INJECTION_SITES,
    KIND_SHM_ENOSPC,
    KIND_TRANSIENT,
    KIND_WORKER_CRASH,
    SITE_ADMISSION_DEQUEUE,
    SITE_MEMORY_PRESSURE,
    SITE_MORSEL_DISPATCH,
    SITE_POOL_SUBMIT,
    SITE_RESULT_CACHE_GET,
    SITE_RESULT_CACHE_PUT,
    SITE_SHM_ALLOCATE,
    SITE_SHM_ATTACH,
)

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "INJECTION_SITES",
    "KIND_SHM_ENOSPC",
    "KIND_TRANSIENT",
    "KIND_WORKER_CRASH",
    "SITE_ADMISSION_DEQUEUE",
    "SITE_MEMORY_PRESSURE",
    "SITE_MORSEL_DISPATCH",
    "SITE_POOL_SUBMIT",
    "SITE_RESULT_CACHE_GET",
    "SITE_RESULT_CACHE_PUT",
    "SITE_SHM_ALLOCATE",
    "SITE_SHM_ATTACH",
]
