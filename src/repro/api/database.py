"""The embeddable :class:`Database` facade.

A :class:`Database` owns everything that outlives a single query: the
catalog, the default optimizer configuration, and — the part that makes
repeated traffic cheap — two caches shared by every session:

* the **plan cache**: complete :class:`~repro.core.optimizer.OptimizationResult`
  objects keyed by ``(bound-query fingerprint, mode, settings)``, so an
  identical logical query is planned exactly once;
* the **enumeration-sequence cache**
  (:class:`~repro.core.enumerator.EnumerationSequenceCache`): the canonical
  DPccp (union, outer, inner) mask-triple sequence keyed by the join graph's
  edge-bitmask signature, so a *same-shape* query with different predicates
  (a plan-cache miss) still skips the enumeration walk entirely.

Sessions (:class:`~repro.api.session.Session`) are created with
:meth:`Database.connect` and own the per-connection state: an execution
context, setting overrides and a metrics history.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Hashable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from ..analysis.contracts import PlanContractVerifier, verify_plans_default
from ..cache import LruCache
from ..core.cost import CostParameters, DEFAULT_COST_PARAMETERS
from ..core.enumerator import EnumerationSequenceCache
from ..core.heuristics import BfCboSettings, planner_overrides, scaled_settings
from ..core.optimizer import (
    OptimizationResult,
    Optimizer,
    OptimizerMode,
    resolve_optimizer_settings,
)
from ..core.query import QueryBlock
from ..errors import PlanningError, SessionClosedError, raise_as
from ..executor.context import executor_overrides
from ..executor.memory import MemoryGovernor, default_governor
from ..faults import FaultPlan, SITE_RESULT_CACHE_GET, SITE_RESULT_CACHE_PUT
from ..executor.runtime import ExecutionResult
from ..serving.cache import ResultCache
from ..sql.binder import bind_sql
from ..storage.catalog import Catalog
from ..storage.schema import ForeignKey, TableSchema, make_schema
from ..storage.statistics import TableStatistics
from ..storage.table import Table, infer_null_mask
from ..storage.types import BOOL, DATE, FLOAT64, INT64, STRING, DataType

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .session import QueryResult, Session


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss counters of a database's plan, sequence and result caches.

    ``plan_evictions`` / ``result_evictions`` count entries dropped by
    invalidation — targeted (per-table, when a dependency is re-registered)
    and full (out-of-band catalog changes) alike; LRU-capacity replacement
    is not counted.
    """

    plan_hits: int
    plan_misses: int
    plan_entries: int
    sequence_hits: int
    sequence_misses: int
    sequence_entries: int
    plan_evictions: int = 0
    result_hits: int = 0
    result_misses: int = 0
    result_entries: int = 0
    result_evictions: int = 0
    #: Result-cache lookups degraded to a miss by an injected
    #: ``result-cache-get`` fault (the query re-executes; correctness is
    #: unaffected because the cache is a pure memoization).
    result_get_degraded: int = 0
    #: Result-cache stores skipped by an injected ``result-cache-put`` fault
    #: (the result is simply not memoized).
    result_put_degraded: int = 0
    #: Batch bytes currently resident in the result cache (the quantity the
    #: ``result_cache_bytes`` knob bounds; 0 when byte-weighting is off or
    #: the cache is empty).
    result_resident_bytes: int = 0

    @property
    def plan_lookups(self) -> int:
        """Total plan-cache lookups."""
        return self.plan_hits + self.plan_misses

    @property
    def sequence_lookups(self) -> int:
        """Total enumeration-sequence-cache lookups."""
        return self.sequence_hits + self.sequence_misses

    @property
    def result_lookups(self) -> int:
        """Total result-cache lookups."""
        return self.result_hits + self.result_misses


def _infer_column_type(values: np.ndarray) -> DataType:
    """Map a numpy array's dtype onto the storage layer's logical types."""
    kind = values.dtype.kind
    if kind == "b":
        return BOOL
    if kind in ("i", "u"):
        return INT64
    if kind == "f":
        return FLOAT64
    if kind == "M":
        return DATE
    if kind in ("U", "S", "O"):
        return STRING
    raise ValueError("cannot infer a column type for dtype %r" % values.dtype)


def _storage_array(values: np.ndarray) -> np.ndarray:
    """Convert an array to the engine's physical representation.

    Dates are stored as days-since-epoch int64 throughout the engine, so
    ``datetime64`` input is converted here.  Unsigned integers are widened to
    the signed int64 their schema declares.  Byte strings are decoded to
    unicode, because predicates compare against ``str`` literals and a
    ``bytes`` vs ``str`` comparison silently matches nothing in numpy.
    """
    if values.dtype.kind == "M":
        return values.astype("datetime64[D]").astype(np.int64)
    if values.dtype.kind == "u":
        if values.size and int(values.max()) > np.iinfo(np.int64).max:
            raise ValueError("unsigned column values exceed int64 range; "
                             "max is %d" % int(values.max()))
        return values.astype(np.int64)
    if values.dtype.kind == "S":
        return values.astype(np.str_)
    return values


def _infer_storage_column(values: np.ndarray,
                          explicit_mask: Optional[Sequence],
                          ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Physical array plus inferred/merged null mask for one input column.

    NaN in float input and ``None`` in object input mark NULLs
    (:func:`~repro.storage.table.infer_null_mask`, merged with any
    ``explicit_mask``) instead of masquerading as data; the filler stored
    under the mask is zero / empty and never read back.
    """
    mask: Optional[np.ndarray] = None
    if explicit_mask is not None:
        mask = np.asarray(explicit_mask, dtype=bool)
        if mask.shape != values.shape:
            raise ValueError("null mask shape %r does not match values %r"
                             % (mask.shape, values.shape))
    inferred = infer_null_mask(values)
    if inferred is not None:
        mask = inferred if mask is None else (mask | inferred)
        if values.dtype.kind == "O":
            # Replace the None markers so the stored array is analysable
            # (np.unique cannot sort None against str).
            values = values.copy()
            values[inferred] = ""
        elif values.dtype.kind == "M":
            # Replace NaT markers before the days-since-epoch conversion:
            # NaT casts to int64 min, a sentinel that would masquerade as an
            # (absurd) date under the mask.
            values = values.copy()
            values[inferred] = np.datetime64(0, np.datetime_data(values.dtype)[0])
    if mask is not None and not mask.any():
        mask = None
    return _storage_array(values), mask


class Database:
    """One embeddable entry point: a catalog plus shared planning caches.

    Args:
        catalog: The catalog to plan and execute against.
        mode: Default optimizer mode for sessions (BF-CBO unless overridden).
        settings: Default BF-CBO settings; ``None`` uses the paper defaults.
        cost_parameters: Cost-model constants shared by planner and executor.
        scale_factor: When set, the paper's absolute heuristic thresholds are
            rescaled to this TPC-H scale factor
            (:func:`~repro.core.heuristics.scaled_settings`), exactly as the
            experiment harness does.
        plan_cache_size: Maximum cached optimization results (0 disables).
        sequence_cache_size: Maximum cached DPccp sequences (0 disables).
        result_cache_size: Maximum cached *execution results* shared across
            sessions (0 — the default — disables result caching entirely,
            preserving the execute-every-call behaviour).  Execution here is
            deterministic, so a result is a pure function of the same key
            the plan cache uses plus the catalog version; hits surface as
            ``QueryResult.from_result_cache`` and in :meth:`cache_stats`.
            Cached batches are frozen (read-only arrays) because every hit
            shares them — see ``docs/serving.md``.
        enumeration_budget: Override of the exact DPccp walk's pair budget
            (see ``BfCboSettings.enumeration_budget``; <= 0 = unlimited).
        fallback_relation_threshold: Override of the relation count beyond
            which the greedy fallback is used directly (<= 0 = never).
        parallel_workers: Override of the sharded-DP worker count
            (<= 1 = the serial loop).
        parallel_executor: Override of the shard pool flavour
            ("thread" or "process").
        executor_workers: Default morsel-execution worker count for sessions
            opened on this database (<= 1 = serial operators; sessions may
            override, see ``docs/executor.md``).
        morsel_size: Default maximum rows per execution morsel for sessions.
        executor_backend: Default morsel-execution backend for sessions —
            ``"thread"``, ``"process"`` (shared-memory GIL-escape pool) or
            ``"auto"`` (threads on free-threaded CPython, processes
            elsewhere); see :func:`repro.executor.backend.resolve_backend`.
        max_cross_join_rows: Default cross-join output guard for sessions
            (<= 0 disables the guard).
        verify_plans: Run the plan-contract verifier
            (:mod:`repro.analysis.contracts`) on every cold-planned query,
            raising :class:`~repro.errors.PlanContractError` if the plan
            violates an executor contract.  ``None`` (the default) follows
            the ``REPRO_VERIFY_PLANS`` environment variable — on in tests
            and CI, off in production; sessions may override per connection.
        fault_plan: Optional :class:`~repro.faults.FaultPlan` driving
            deterministic fault injection: threaded into every session's
            execution context (morsel dispatch, process-pool submit, shm
            sites, memory pressure) and consulted at this database's
            result-cache get/put sites.  ``None`` (the default) is
            zero-overhead; see ``docs/robustness.md``.
        memory_pool_bytes: Size of this database's memory-governor pool.
            ``None`` (the default) shares the process-wide governor
            (:func:`~repro.executor.memory.default_governor`, sized by
            ``REPRO_MEMORY_POOL_BYTES``); an explicit size gives this
            database its own pool.  Operators whose reservations the pool
            cannot cover degrade to their spill paths — see
            ``docs/memory.md``.
        result_cache_bytes: Byte bound on the result cache: stored batches
            are weighted by their actual resident bytes and eviction is by
            size, not entry count (``None`` keeps the entry-count bound
            only).
        max_memory_bytes: Default per-query reserved-byte cap for sessions;
            reservations above it degrade the operator to its spill path.
        max_spill_bytes: Default per-query spill cap for sessions; exceeding
            it raises :class:`~repro.errors.ResourceExhaustedError` — the
            runaway-query watchdog.
        max_rows: Default per-query materialized-row cap for sessions.
        spill_dir: Root directory for per-query spill files (``None`` = the
            system temp dir).
    """

    def __init__(self, catalog: Catalog, *,
                 mode: OptimizerMode = OptimizerMode.BF_CBO,
                 settings: Optional[BfCboSettings] = None,
                 cost_parameters: Optional[CostParameters] = None,
                 scale_factor: Optional[float] = None,
                 plan_cache_size: int = 256,
                 sequence_cache_size: int = 128,
                 result_cache_size: int = 0,
                 enumeration_budget: Optional[int] = None,
                 fallback_relation_threshold: Optional[int] = None,
                 parallel_workers: Optional[int] = None,
                 parallel_executor: Optional[str] = None,
                 executor_workers: Optional[int] = None,
                 morsel_size: Optional[int] = None,
                 executor_backend: Optional[str] = None,
                 max_cross_join_rows: Optional[int] = None,
                 verify_plans: Optional[bool] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 memory_pool_bytes: Optional[int] = None,
                 result_cache_bytes: Optional[int] = None,
                 max_memory_bytes: Optional[int] = None,
                 max_spill_bytes: Optional[int] = None,
                 max_rows: Optional[int] = None,
                 spill_dir: Optional[str] = None) -> None:
        self.catalog = catalog
        self.default_mode = mode
        self.default_settings = settings
        self.cost_parameters = cost_parameters or DEFAULT_COST_PARAMETERS
        self.scale_factor = scale_factor
        #: Database-wide adaptive-planner overrides, folded into every
        #: resolved settings object (sessions may override them again).
        self.planner_overrides: Dict[str, object] = planner_overrides(
            enumeration_budget=enumeration_budget,
            fallback_relation_threshold=fallback_relation_threshold,
            parallel_workers=parallel_workers,
            parallel_executor=parallel_executor)
        #: Database-wide executor knob defaults; resolved per session exactly
        #: like the planner overrides (session kwarg > database kwarg >
        #: engine default) — see :func:`repro.executor.executor_overrides`.
        self.executor_overrides: Dict[str, object] = executor_overrides(
            executor_workers=executor_workers,
            morsel_size=morsel_size,
            max_cross_join_rows=max_cross_join_rows,
            executor_backend=executor_backend,
            max_memory_bytes=max_memory_bytes,
            max_spill_bytes=max_spill_bytes,
            max_rows=max_rows,
            spill_dir=spill_dir)
        #: The memory governor every session's per-query budgets draw from
        #: (and the serving tier's admission queue consults): this
        #: database's own pool when ``memory_pool_bytes`` was given, the
        #: process-wide default governor otherwise.
        self.memory_governor: MemoryGovernor = (
            MemoryGovernor(memory_pool_bytes)
            if memory_pool_bytes is not None else default_governor())
        #: Whether cold-planned queries run the plan-contract verifier;
        #: resolved like every other knob (session kwarg > database kwarg >
        #: ``REPRO_VERIFY_PLANS`` environment default).
        self.verify_plans: bool = (verify_plans_default()
                                   if verify_plans is None else verify_plans)
        #: Deterministic fault-injection plan shared by every session opened
        #: on this database (``None`` = no injection, zero overhead).
        self.fault_plan = fault_plan
        self._result_get_degraded = 0
        self._result_put_degraded = 0
        self.sequence_cache: Optional[EnumerationSequenceCache] = (
            EnumerationSequenceCache(sequence_cache_size)
            if sequence_cache_size > 0 else None)
        self.optimizer = Optimizer(catalog, self.cost_parameters,
                                   sequence_cache=self.sequence_cache)
        #: The TPC-H workload this database was built from, if any
        #: (see :meth:`from_tpch`).
        self.workload = None
        self._plan_cache: "LruCache" = LruCache(plan_cache_size)
        self._result_cache = ResultCache(result_cache_size,
                                         max_bytes=result_cache_bytes)
        #: Result-cache full-invalidation epoch: part of every result key,
        #: bumped on out-of-band catalog changes so older keys become
        #: unreachable instantly.  Table registration does NOT bump it —
        #: it evicts per table, keeping unrelated results hot.
        self._result_epoch = 0
        #: Catalog version the cached plans were built against; any catalog
        #: change — even one made directly on ``db.catalog`` — bumps the
        #: version and invalidates them on the next lookup.
        self._catalog_version = catalog.version
        self._closed = False
        #: Open sessions, tracked weakly so :meth:`close` can shut their
        #: worker pools down without keeping abandoned sessions alive.
        self._sessions: "weakref.WeakSet[Session]" = weakref.WeakSet()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_tpch(cls, scale_factor: float = 0.01, *,
                  statistics_only: bool = False,
                  query_numbers: Optional[List[int]] = None,
                  **database_kwargs: Any) -> "Database":
        """A database over a generated (or statistics-only) TPC-H catalog.

        The bound workload queries stay reachable through :meth:`tpch_query`,
        and the heuristic thresholds are rescaled to ``scale_factor`` unless
        an explicit ``scale_factor=None`` override is passed.
        """
        from ..tpch.workload import TpchWorkload

        workload = (TpchWorkload.statistics_only(scale_factor,
                                                 query_numbers=query_numbers)
                    if statistics_only else
                    TpchWorkload.generate(scale_factor,
                                          query_numbers=query_numbers))
        database_kwargs.setdefault("scale_factor", scale_factor)
        database = cls(workload.catalog, **database_kwargs)
        database.workload = workload
        return database

    def tpch_query(self, number: int) -> QueryBlock:
        """The bound TPC-H query ``number`` of the backing workload."""
        if self.workload is None:
            raise KeyError("database was not built with Database.from_tpch")
        return self.workload.query(number)

    def register_table(self, name: str,
                       columns: Mapping[str, Sequence], *,
                       null_masks: Optional[Mapping[str, Sequence]] = None,
                       primary_key: Sequence[str] = (),
                       foreign_keys: Sequence[ForeignKey] = (),
                       statistics: Optional[TableStatistics] = None) -> Table:
        """Register an ad-hoc table from column arrays and analyse it.

        Column types are inferred from the numpy dtypes, so
        ``db.register_table("t", {"k": np.arange(10)})`` is all it takes to
        make a table queryable.  NULLs come in two ways: pass explicit
        boolean ``null_masks`` per column, or let NaN floats and
        ``None``-bearing object arrays be inferred as nullable columns with
        a proper mask (NaN never masquerades as data).  Returns the
        materialised table.

        Registration only evicts the cached plans that depend on ``name``
        (see :meth:`cache_stats` for eviction counts); plans over other
        tables stay cached.
        """
        arrays = {col: np.asarray(values) for col, values in columns.items()}
        null_masks = null_masks or {}
        unknown = set(null_masks) - set(arrays)
        if unknown:
            raise ValueError("null masks for unknown columns %r"
                             % sorted(unknown))
        storage = {}
        masks = {}
        for col, data in arrays.items():
            storage[col], masks[col] = _infer_storage_column(
                data, null_masks.get(col))
        schema = make_schema(name,
                             [(col, _infer_column_type(arrays[col]),
                               masks[col] is not None)
                              for col in arrays],
                             primary_key=primary_key,
                             foreign_keys=foreign_keys)
        table = Table(schema, storage, null_masks=masks)
        self._register(table.name, lambda: self.catalog.register_table(
            table, statistics=statistics))
        return table

    def register_schema(self, schema: TableSchema,
                        statistics: Optional[TableStatistics] = None) -> None:
        """Register a statistics-only table (planning without data)."""
        self._register(schema.name, lambda: self.catalog.register_schema(
            schema, statistics))

    def _register(self, table_name: str, register: Callable[[], None]) -> None:
        """Run a catalog registration with per-table plan-cache eviction.

        Any out-of-band catalog change is flushed first (full eviction);
        the registration itself then only drops cached plans that reference
        ``table_name``, and the catalog-version snapshot is advanced so the
        surviving entries stay served.
        """
        self._invalidate_if_catalog_changed()
        register()
        key = table_name.lower()
        self._plan_cache.evict_if(lambda _, entry: key in entry[1])
        self._result_cache.evict_table(key)
        self._catalog_version = self.catalog.version

    # ------------------------------------------------------------------
    # Sessions
    # ------------------------------------------------------------------

    def connect(self, **session_kwargs: Any) -> "Session":
        """Open a new session against this database."""
        from .session import Session

        self._check_open()
        session = Session(self, **session_kwargs)
        self._sessions.add(session)
        return session

    def execute_many(self, queries: Sequence, *,
                     workers: Optional[int] = None,
                     deduplicate: bool = True,
                     return_errors: bool = False,
                     **session_kwargs: Any) -> List:
        """Execute a batch of queries concurrently against this database.

        Convenience wrapper over :meth:`Session.execute_many
        <repro.api.session.Session.execute_many>`: opens a throwaway session
        (``history_limit=0`` — batch serving should not retain every result
        twice), runs the whole batch through the shared plan cache with
        per-execution filter scopes, and returns the results in input order.
        With ``return_errors=True`` one failing query no longer poisons the
        batch: its slot carries the error (``QueryResult.error``) and every
        independent request still succeeds.  ``session_kwargs`` configure
        the temporary session (e.g. ``executor_workers`` for morsel
        parallelism inside each query).
        """
        session_kwargs.setdefault("history_limit", 0)
        session = self.connect(**session_kwargs)
        return session.execute_many(queries, workers=workers,
                                    deduplicate=deduplicate,
                                    return_errors=return_errors)

    # ------------------------------------------------------------------
    # Planning (the shared plan cache)
    # ------------------------------------------------------------------

    def bind(self, sql: str, name: str = "query") -> QueryBlock:
        """Parse and bind a SQL string against the catalog."""
        return bind_sql(self.catalog, sql, name=name)

    def resolve_settings(self, mode: OptimizerMode,
                         settings: Optional[BfCboSettings],
                         overrides: Optional[Mapping[str, object]] = None,
                         ) -> BfCboSettings:
        """The effective settings for ``mode`` (defaults, scaling, disabling).

        Delegates the mode defaulting to the optimizer's own
        :func:`~repro.core.optimizer.resolve_optimizer_settings` (so the plan
        cache keys on exactly what the optimizer runs with), then applies the
        scale-factor threshold rescaling the experiment harness uses.
        Adaptive-planner knob layering follows specificity: an *explicit*
        ``settings`` object (per-call or per-session) is taken verbatim and
        the database-wide constructor knobs do not touch it; only defaulted
        settings receive them.  ``overrides`` (a session's knobs) apply last
        — a session is more specific than its database.
        """
        explicit = settings is not None
        if settings is None:
            settings = self.default_settings
        settings = resolve_optimizer_settings(mode, settings)
        if mode is OptimizerMode.BF_CBO and self.scale_factor is not None:
            settings = scaled_settings(self.scale_factor, settings)
        if not explicit and self.planner_overrides:
            settings = settings.with_overrides(**self.planner_overrides)
        if overrides:
            settings = settings.with_overrides(**overrides)
        return settings

    def optimize(self, query: QueryBlock,
                 mode: Optional[OptimizerMode] = None,
                 settings: Optional[BfCboSettings] = None,
                 overrides: Optional[Mapping[str, object]] = None,
                 verify: Optional[bool] = None,
                 ) -> Tuple[OptimizationResult, bool]:
        """Plan ``query``, consulting the plan cache.

        Returns ``(result, from_cache)``.  A cached result is returned as-is
        (plans are immutable during execution); its ``planning_time_ms`` still
        reports the original cold planning time.  ``overrides`` are per-call
        adaptive-planner field overrides (a session's knobs), folded into the
        resolved settings — and therefore into the plan-cache key.

        ``verify`` overrides the database's ``verify_plans`` knob for this
        call.  Verification runs on *cold* planning only — a cached plan
        already passed on the miss that produced it — and the knob stays out
        of the cache key: it changes whether a plan is checked, never which
        plan is produced.
        """
        self._check_open()
        mode = mode or self.default_mode
        verify = self.verify_plans if verify is None else verify
        settings = self.resolve_settings(mode, settings, overrides)
        caching = self._plan_cache.max_entries > 0
        if caching:
            # Snapshot the version *before* the invalidation check: a
            # mutation landing anywhere after this line makes the guards
            # below treat the lookup as a miss and refuse the store, so a
            # stale result is neither served nor kept.
            planned_version = self.catalog.version
            self._invalidate_if_catalog_changed()
            # Key on the plan-relevant settings only: the sharded DP is
            # bit-identical to serial, so sessions differing solely in
            # parallel knobs share one cached plan.
            key = (query.fingerprint(), mode, settings.plan_relevant())
            cached = self._plan_cache.lookup(key)
            if cached is not None and self.catalog.version == planned_version:
                return cached[0], True
        with raise_as(PlanningError, "planning %s failed" % query.name):
            result = self.optimizer.optimize(query, mode, settings)
        if verify:
            # PlanContractError subclasses PlanningError, so callers guarding
            # the planning stage catch contract violations with no new paths.
            PlanContractVerifier(self.catalog, query).verify(result.plan)
        if caching and self.catalog.version == planned_version:
            # Entries carry the set of tables the plan reads so that a
            # re-registration of one table evicts only its dependents.
            tables = frozenset(rel.table_name.lower()
                               for rel in query.relations)
            self._plan_cache.store(key, (result, tables))
        return result, False

    def _invalidate_if_catalog_changed(self) -> None:
        """Drop cached plans when the catalog was mutated (any path).

        Only the entries are dropped — the lifetime hit/miss counters keep
        counting so ``cache_stats()`` hit rates survive catalog changes.
        Eviction happens *before* the version mark: a concurrent caller
        racing this method either re-evicts (idempotent) or finds the cache
        already empty, never a stale entry behind a fresh mark.
        """
        version = self.catalog.version
        if version != self._catalog_version:
            self._plan_cache.evict_all()
            self._result_cache.evict_all()
            self._result_epoch += 1
            self._catalog_version = version

    # ------------------------------------------------------------------
    # The shared result cache
    # ------------------------------------------------------------------

    def _result_key(self, result: "QueryResult") -> Tuple[Hashable, ...]:
        """The result-cache key of one planned query.

        Same projection as the plan cache (fingerprint, mode, plan-relevant
        settings) plus the full-invalidation epoch — see
        :class:`~repro.serving.cache.ResultCache`.
        """
        return ResultCache.key(result.query.fingerprint(), result.mode,
                               result.settings.plan_relevant(),
                               self._result_epoch)

    def cached_result(self, result: "QueryResult",
                      version: int) -> Optional[ExecutionResult]:
        """The cached execution for a planned query, if any.

        ``version`` is the catalog version the caller snapshotted *before*
        planning; a mutation racing the lookup makes this a miss (the
        invalidation pass above already dropped the affected entries).
        """
        if not self._result_cache.enabled:
            return None
        if self.fault_plan is not None \
                and self.fault_plan.fire(SITE_RESULT_CACHE_GET) is not None:
            # The cache is pure memoization, so a failed lookup degrades to
            # a miss (re-execute) instead of failing the query.
            self._result_get_degraded += 1
            return None
        self._invalidate_if_catalog_changed()
        if self.catalog.version != version:
            return None
        return self._result_cache.lookup(self._result_key(result))

    def store_result(self, result: "QueryResult", version: int) -> None:
        """Cache a finished execution unless the catalog moved under it.

        Mirrors the plan cache's store guard: a registration landing while
        the query ran means the result may reflect neither the old nor the
        new catalog consistently, so it is not kept.  The stored batch is
        frozen — every future hit shares it.
        """
        if not self._result_cache.enabled or result.execution is None:
            return
        if self.fault_plan is not None \
                and self.fault_plan.fire(SITE_RESULT_CACHE_PUT) is not None:
            # A failed store loses only the memoization, never the result.
            self._result_put_degraded += 1
            return
        if self.catalog.version != version:
            return
        tables = frozenset(rel.table_name.lower()
                           for rel in result.query.relations)
        self._result_cache.store(self._result_key(result),
                                 result.execution, tables)

    # ------------------------------------------------------------------
    # Cache introspection
    # ------------------------------------------------------------------

    def cache_stats(self) -> CacheStats:
        """Hit/miss counters for the plan, sequence and result caches."""
        self._invalidate_if_catalog_changed()
        plans = self._plan_cache
        sequence = self.sequence_cache
        results = self._result_cache
        return CacheStats(
            plan_hits=plans.hits, plan_misses=plans.misses,
            plan_entries=len(plans),
            sequence_hits=sequence.hits if sequence else 0,
            sequence_misses=sequence.misses if sequence else 0,
            sequence_entries=len(sequence) if sequence else 0,
            plan_evictions=plans.evictions,
            result_hits=results.hits, result_misses=results.misses,
            result_entries=len(results),
            result_evictions=results.evictions,
            result_get_degraded=self._result_get_degraded,
            result_put_degraded=self._result_put_degraded,
            result_resident_bytes=results.resident_bytes)

    def clear_caches(self) -> None:
        """Drop all cached plans, sequences and results."""
        self._plan_cache.clear()
        self._result_cache.clear()
        self._result_epoch += 1
        self._catalog_version = self.catalog.version
        if self.sequence_cache is not None:
            self.sequence_cache.clear()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def is_closed(self) -> bool:
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise SessionClosedError("database is closed")

    def close(self) -> None:
        """Close the database deterministically (idempotent).

        Closes every still-open session (shutting their morsel worker
        pools down), drops the caches, and makes ``connect`` /
        ``optimize`` / ``execute_many`` raise
        :class:`~repro.errors.SessionClosedError` from now on.
        """
        if self._closed:
            return
        self._closed = True
        for session in list(self._sessions):
            session.close()
        self.clear_caches()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
