"""Sessions: per-connection execution state over a shared :class:`Database`.

A :class:`Session` owns an :class:`~repro.executor.context.ExecutionContext`,
optional per-session mode/setting overrides, and a metrics history of every
query it ran.  Plans come from the database's shared plan cache; executions
run in per-call filter scopes, so any number of sessions can run concurrently
against one catalog without interfering.

All failures surface as typed :class:`~repro.errors.ReproError` subclasses:
``SqlError`` from parsing/binding, ``PlanningError`` from the optimizer and
``ExecutionError`` from the executor.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..core.explain import explain as explain_plan
from ..core.heuristics import BfCboSettings, planner_overrides
from ..core.optimizer import OptimizationResult, OptimizerMode
from ..core.query import QueryBlock
from ..errors import ExecutionError, ReproError, SessionClosedError, raise_as
from ..faults import FaultPlan
from ..storage.catalog import Catalog
from ..executor.cancel import CancelToken
from ..executor.context import (
    DEFAULT_MAX_CROSS_JOIN_ROWS,
    DEFAULT_MORSEL_SIZE,
    ExecutionContext,
    executor_overrides,
)
from ..executor.runtime import ExecutionResult, Executor
from .database import Database

QueryLike = Union[str, QueryBlock]


@dataclass
class QueryResult:
    """Everything one :meth:`Session.execute` / :meth:`Session.plan` produced.

    ``planning_time_ms`` is the time *this call* spent obtaining a plan — a
    plan-cache hit makes it near zero, while
    ``optimization.planning_time_ms`` always reports the original cold
    optimization time.
    """

    query: QueryBlock
    mode: OptimizerMode
    settings: BfCboSettings
    optimization: OptimizationResult
    planning_time_ms: float
    from_plan_cache: bool
    execution: Optional[ExecutionResult] = None
    #: True when ``execution`` came from the database's shared result cache
    #: instead of running; cached batches are frozen (read-only arrays).
    from_result_cache: bool = False
    #: The typed error this query failed with, when it was part of an
    #: ``execute_many(return_errors=True)`` batch — partial-failure slots
    #: carry their error here instead of poisoning the whole batch.  Row
    #: accessors re-raise it.
    error: Optional[ReproError] = None

    # -- result rows ---------------------------------------------------------

    @property
    def executed(self) -> bool:
        """True if the plan was actually run (not just planned)."""
        return self.execution is not None

    @property
    def failed(self) -> bool:
        """True when this batch slot failed (see :attr:`error`)."""
        return self.error is not None

    def _live_execution(self) -> ExecutionResult:
        """The execution behind the row accessors, or the typed failure."""
        if self.error is not None:
            raise self.error
        if self.execution is None:
            raise RuntimeError("query %r was planned but not executed"
                               % self.query.name)
        return self.execution

    @property
    def num_rows(self) -> int:
        """Number of result rows (0 for plan-only results)."""
        return self.execution.num_rows if self.execution else 0

    @property
    def columns(self) -> List[str]:
        """Result column names, in batch order."""
        return self.execution.batch.keys if self.execution else []

    def column(self, name: str) -> np.ndarray:
        """One result column as a numpy array.

        Values at NULL positions (see :meth:`null_mask`) are deterministic
        filler, never data.  Raises ``RuntimeError`` (a caller-state error,
        deliberately outside the :class:`~repro.errors.ReproError`
        hierarchy) when the result was only planned, never executed — or
        re-raises :attr:`error` for a failed partial-batch slot.
        """
        return self._live_execution().batch.column(name)

    def null_mask(self, name: str) -> Optional[np.ndarray]:
        """Null mask of one result column (``None`` = every row valid).

        This is the only way to tell a NULL result cell from its filler —
        e.g. a ``SUM`` over an all-NULL group stores ``0.0`` in the value
        array and ``True`` here (``RuntimeError`` if plan-only).
        """
        return self._live_execution().batch.null_mask(name)

    def to_dict(self) -> Dict[str, np.ndarray]:
        """All result columns keyed by name (``RuntimeError`` if plan-only).

        NULL cells hold filler values; consult :meth:`null_mask` (or
        :meth:`to_pylist` for a ``None``-substituted view) to detect them.
        """
        return self._live_execution().batch.to_dict()

    def to_pylist(self) -> List[Dict[str, object]]:
        """Result rows as plain dicts with ``None`` at NULL positions.

        The mask-honouring convenience accessor for small result sets
        (``RuntimeError`` if plan-only).
        """
        batch = self._live_execution().batch
        columns = {key: (batch.column(key), batch.null_mask(key))
                   for key in batch.keys}
        rows: List[Dict[str, object]] = []
        for i in range(batch.num_rows):
            rows.append({
                key: None if mask is not None and mask[i]
                else (values[i].item() if hasattr(values[i], "item")
                      else values[i])
                for key, (values, mask) in columns.items()})
        return rows

    # -- metrics --------------------------------------------------------------

    @property
    def simulated_latency(self) -> Optional[float]:
        """Deterministic work-unit latency of the execution, if any."""
        return self.execution.simulated_latency if self.execution else None

    @property
    def num_bloom_filters(self) -> int:
        """Bloom filters applied anywhere in the chosen plan."""
        return self.optimization.num_bloom_filters

    @property
    def estimated_cost(self) -> float:
        """Optimizer's total cost estimate of the chosen plan."""
        return self.optimization.estimated_cost

    def explain(self) -> str:
        """EXPLAIN (ANALYZE when executed) rendering of the chosen plan."""
        actuals = (self.execution.metrics.actual_rows_by_node()
                   if self.execution else None)
        return explain_plan(self.optimization.plan, actuals)


class PreparedQuery:
    """A query bound once and executable many times on its session.

    Prepared queries skip re-parsing and re-binding; re-planning is already
    absorbed by the database plan cache, so repeated :meth:`execute` calls do
    catalog work only for the actual execution.
    """

    def __init__(self, session: "Session", query: QueryBlock) -> None:
        self.session = session
        self.query = query

    def execute(self, mode: Optional[OptimizerMode] = None,
                settings: Optional[BfCboSettings] = None,
                cancel: Optional[CancelToken] = None) -> QueryResult:
        """Run the prepared query (modes/settings may override per call)."""
        return self.session.execute(self.query, mode, settings, cancel=cancel)

    def plan(self, mode: Optional[OptimizerMode] = None,
             settings: Optional[BfCboSettings] = None) -> QueryResult:
        """Plan the prepared query without executing it."""
        return self.session.plan(self.query, mode, settings)

    def explain(self, mode: Optional[OptimizerMode] = None,
                settings: Optional[BfCboSettings] = None) -> str:
        """EXPLAIN rendering of the prepared query's plan."""
        return self.session.explain(self.query, mode, settings)


class Session:
    """One connection: execution context, overrides and metrics history.

    Args:
        database: The shared database this session plans and executes against.
        mode: Per-session default optimizer mode (falls back to the
            database's default).
        settings: Per-session default BF-CBO settings (falls back to the
            database's default, then the paper defaults).
        degree_of_parallelism: Simulated DOP of this session's executions.
        bloom_partitions: Partitioned-Bloom-filter knob of the context.
        history_limit: Maximum number of results retained in
            :attr:`history` (oldest dropped first); 0 disables recording
            entirely.  Results hold full batches and plans, so an unbounded
            history would grow with every query served.
        enumeration_budget: Per-session override of the exact DPccp walk's
            pair budget (<= 0 = unlimited).
        fallback_relation_threshold: Per-session override of the relation
            count beyond which the greedy fallback engages (<= 0 = never).
        parallel_workers: Per-session override of the sharded-DP worker
            count (<= 1 = serial).
        parallel_executor: Per-session override of the shard pool flavour
            ("thread" or "process").
        executor_workers: Per-session override of the morsel-execution
            worker count (<= 1 = serial operators; falls back to the
            database default, then serial — see ``docs/executor.md``).
        morsel_size: Per-session override of the maximum rows per execution
            morsel.
        executor_backend: Per-session override of how morsels escape the
            interpreter — ``"thread"``, ``"process"`` (shared-memory
            GIL-escape pool) or ``"auto"`` (see
            :func:`repro.executor.backend.resolve_backend`).
        max_cross_join_rows: Per-session override of the cross-join output
            guard (<= 0 disables it).
        verify_plans: Per-session override of the plan-contract verifier
            knob (falls back to the database's, then the
            ``REPRO_VERIFY_PLANS`` environment default); see
            :mod:`repro.analysis.contracts`.
        fault_plan: Per-session override of the deterministic
            fault-injection plan (falls back to the database's
            ``fault_plan``; ``None`` with no database plan = zero-overhead
            production path — see ``docs/robustness.md``).
        max_memory_bytes: Per-session override of the per-query
            reserved-byte cap; a reservation above it degrades the operator
            to its spill path (see ``docs/memory.md``).
        max_spill_bytes: Per-session override of the per-query spill cap
            (exceeding it raises
            :class:`~repro.errors.ResourceExhaustedError`).
        max_rows: Per-session override of the per-query materialized-row
            cap.
        spill_dir: Per-session override of the spill-file root directory.
    """

    def __init__(self, database: Database, *,
                 mode: Optional[OptimizerMode] = None,
                 settings: Optional[BfCboSettings] = None,
                 degree_of_parallelism: int = 48,
                 bloom_partitions: int = 1,
                 history_limit: int = 128,
                 enumeration_budget: Optional[int] = None,
                 fallback_relation_threshold: Optional[int] = None,
                 parallel_workers: Optional[int] = None,
                 parallel_executor: Optional[str] = None,
                 executor_workers: Optional[int] = None,
                 morsel_size: Optional[int] = None,
                 executor_backend: Optional[str] = None,
                 max_cross_join_rows: Optional[int] = None,
                 verify_plans: Optional[bool] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 max_memory_bytes: Optional[int] = None,
                 max_spill_bytes: Optional[int] = None,
                 max_rows: Optional[int] = None,
                 spill_dir: Optional[str] = None) -> None:
        self.database = database
        self.mode = mode
        self.settings = settings
        self.history_limit = history_limit
        #: Per-session plan-verification knob; ``None`` defers to the
        #: database (which in turn defers to ``REPRO_VERIFY_PLANS``).
        self.verify_plans = verify_plans
        #: Per-session adaptive-planner overrides, applied on top of the
        #: database-wide ones for every plan this session requests.
        self.planner_overrides: Dict[str, object] = planner_overrides(
            enumeration_budget=enumeration_budget,
            fallback_relation_threshold=fallback_relation_threshold,
            parallel_workers=parallel_workers,
            parallel_executor=parallel_executor)
        self.context = ExecutionContext.for_catalog(
            database.catalog, parameters=database.cost_parameters,
            degree_of_parallelism=degree_of_parallelism)
        self.context.bloom_partitions = bloom_partitions
        # Executor knobs resolve by specificity, mirroring the planner
        # knobs: session kwarg > database kwarg > engine default.
        resolved = dict(database.executor_overrides)
        resolved.update(executor_overrides(
            executor_workers=executor_workers,
            morsel_size=morsel_size,
            max_cross_join_rows=max_cross_join_rows,
            executor_backend=executor_backend,
            max_memory_bytes=max_memory_bytes,
            max_spill_bytes=max_spill_bytes,
            max_rows=max_rows,
            spill_dir=spill_dir))
        self.context.executor_workers = resolved.get("executor_workers", 0)
        self.context.morsel_size = resolved.get("morsel_size",
                                                DEFAULT_MORSEL_SIZE)
        self.context.max_cross_join_rows = resolved.get(
            "max_cross_join_rows", DEFAULT_MAX_CROSS_JOIN_ROWS)
        self.context.executor_backend = resolved.get("executor_backend",
                                                     "thread")
        self.context.max_memory_bytes = resolved.get("max_memory_bytes")
        self.context.max_spill_bytes = resolved.get("max_spill_bytes")
        self.context.max_rows = resolved.get("max_rows")
        self.context.spill_dir = resolved.get("spill_dir")
        # Per-query budgets draw from the database's governor — explicit
        # pool when constructed with memory_pool_bytes, the process-wide
        # default otherwise.
        self.context.memory_governor = database.memory_governor
        self.context.fault_plan = (fault_plan if fault_plan is not None
                                   else database.fault_plan)
        #: The most recent results this session produced (every `plan`,
        #: `execute` and `explain` call), oldest first, capped at
        #: ``history_limit``.
        self.history: List[QueryResult] = []
        self._closed = False

    # ------------------------------------------------------------------

    @property
    def catalog(self) -> Catalog:
        """The catalog behind the session's database."""
        return self.database.catalog

    @property
    def last(self) -> Optional[QueryResult]:
        """The most recent result, if any."""
        return self.history[-1] if self.history else None

    def clear_history(self) -> None:
        """Forget all recorded results."""
        self.history.clear()

    @property
    def total_simulated_latency(self) -> float:
        """Sum of the simulated latencies of the recorded executions."""
        return sum(result.simulated_latency or 0.0 for result in self.history)

    def executor_stats(self) -> Dict[str, object]:
        """Morsel-executor pool and dispatch counters of this session.

        See :meth:`ExecutionContext.executor_stats
        <repro.executor.context.ExecutionContext.executor_stats>`: pool
        creation counts (pinning the no-churn reuse across ``execute_many``
        calls), dispatched morsel / process / batch task totals,
        shared-memory bytes exported and the resolved backend.
        """
        return self.context.executor_stats()

    def _record(self, result: QueryResult) -> QueryResult:
        if self.history_limit > 0:
            self.history.append(result)
            if len(self.history) > self.history_limit:
                del self.history[:len(self.history) - self.history_limit]
        return result

    # ------------------------------------------------------------------
    # The query pipeline
    # ------------------------------------------------------------------

    def prepare(self, query: QueryLike, name: str = "query") -> PreparedQuery:
        """Parse and bind once, returning a re-executable handle."""
        return PreparedQuery(self, self._resolve_query(query, name))

    def plan(self, query: QueryLike,
             mode: Optional[OptimizerMode] = None,
             settings: Optional[BfCboSettings] = None,
             name: str = "query") -> QueryResult:
        """Plan a query (through the plan cache) without executing it."""
        self._check_open()
        block = self._resolve_query(query, name)
        return self._record(self._plan_block(block, mode, settings))

    def execute(self, query: QueryLike,
                mode: Optional[OptimizerMode] = None,
                settings: Optional[BfCboSettings] = None,
                name: str = "query",
                cancel: Optional[CancelToken] = None) -> QueryResult:
        """Plan (through the plan cache), then execute (through the result
        cache, when the database enables one).

        ``cancel`` is a cooperative :class:`~repro.executor.cancel.CancelToken`
        checked at operator and morsel boundaries; tripping it (explicitly or
        by deadline) raises :class:`~repro.errors.QueryCancelledError` within
        one morsel.  Works identically from sync callers and the async
        serving tier.
        """
        self._check_open()
        block = self._resolve_query(query, name)
        result = self._plan_block(block, mode, settings)
        return self._record(self._execute_result(result, cancel))

    def execute_many(self, queries: Sequence[QueryLike],
                     mode: Optional[OptimizerMode] = None,
                     settings: Optional[BfCboSettings] = None, *,
                     workers: Optional[int] = None,
                     deduplicate: bool = True,
                     return_errors: bool = False,
                     name: str = "batch") -> List[QueryResult]:
        """Execute a batch of queries; results come back in input order.

        The high-throughput serving entry point.  All queries are planned
        first (hitting the database's shared plan cache), then executed
        concurrently on a per-call thread pool — every execution runs in its
        own :class:`~repro.executor.context.FilterScope`, so in-flight
        queries never observe each other's Bloom filters.

        ``deduplicate=True`` additionally collapses *identical* requests
        (same bound-query fingerprint, optimizer mode and resolved settings)
        within the batch: the query is executed once and every duplicate's
        :class:`QueryResult` shares the same immutable
        :class:`~repro.executor.runtime.ExecutionResult` — the
        request-collapsing that makes serving traffic with repeated queries
        cheap.  Distinct queries are never collapsed.

        ``workers`` defaults to the session's ``executor_workers`` knob
        (minimum 1).  The batch pool is separate from the morsel pool, so
        per-query morsel parallelism composes with batch parallelism without
        deadlock.  By default the first failing query raises its typed
        error and results are recorded in :attr:`history` only when the
        whole batch succeeds.  With ``return_errors=True`` the batch has
        partial-failure semantics instead: every independent request runs
        to completion, a failing slot carries its typed error in
        ``QueryResult.error`` (row accessors re-raise it; collapsed
        duplicates share the slot's error), and every slot is recorded.

        A shared :class:`~repro.executor.runtime.ExecutionResult` (collapsed
        duplicates and result-cache hits alike) has its batch frozen: the
        arrays are marked read-only, so one caller mutating "its" result
        cannot corrupt another caller's view — mutation attempts raise
        ``ValueError`` instead of aliasing silently.
        """
        self._check_open()
        blocks = [self._resolve_query(query, "%s[%d]" % (name, index))
                  for index, query in enumerate(queries)]
        planned = [self._plan_block(block, mode, settings)
                   for block in blocks]

        # Collapse identical requests onto one execution slot each.
        slot_of: List[int] = []
        slots: List[QueryResult] = []
        seen: Dict[object, int] = {}
        for result in planned:
            key = ((result.query.fingerprint(), result.mode, result.settings)
                   if deduplicate else len(slots))
            slot = seen.get(key)
            if slot is None:
                slot = seen[key] = len(slots)
                slots.append(result)
            slot_of.append(slot)

        def run(result: QueryResult) -> QueryResult:
            try:
                return self._execute_result(result, None)
            except ReproError as exc:
                if not return_errors:
                    raise
                result.error = exc
                return result

        pool_size = workers if workers is not None \
            else self.context.executor_workers
        pool_size = max(int(pool_size), 1)
        if pool_size > 1 and len(slots) > 1:
            # The persistent batch pool: reused across execute_many calls
            # (no per-call pool churn — see MorselPools / executor_stats).
            pool = self.context.pools.batch_pool(pool_size)
            self.context.pools.count_batch_tasks(len(slots))
            list(pool.map(run, slots))
        else:
            for result in slots:
                run(result)

        # Freeze any execution shared by more than one caller before
        # handing the results out (result-cache hits are frozen already).
        shares = [0] * len(slots)
        for slot in slot_of:
            shares[slot] += 1
        for source, count in zip(slots, shares):
            if count > 1 and source.execution is not None:
                source.execution.batch.freeze()

        for result, slot in zip(planned, slot_of):
            source = slots[slot]
            result.execution = source.execution
            result.from_result_cache = source.from_result_cache
            result.error = source.error
            self._record(result)
        return planned

    def explain(self, query: QueryLike,
                mode: Optional[OptimizerMode] = None,
                settings: Optional[BfCboSettings] = None,
                analyze: bool = False, name: str = "query") -> str:
        """EXPLAIN (or, with ``analyze``, EXPLAIN ANALYZE) a query."""
        if analyze:
            return self.execute(query, mode, settings, name=name).explain()
        return self.plan(query, mode, settings, name=name).explain()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def is_closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Close the session deterministically (idempotent).

        Shuts the context's morsel worker pool down and makes ``plan`` /
        ``execute`` / ``execute_many`` raise
        :class:`~repro.errors.SessionClosedError` from now on.  Already
        produced results (and :attr:`history`) stay usable.
        """
        if self._closed:
            return
        self._closed = True
        self.context.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise SessionClosedError("session is closed")

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _execute_result(self, result: QueryResult,
                        cancel: Optional[CancelToken]) -> QueryResult:
        """Execute one planned query through the shared result cache.

        The catalog version is snapshotted before the lookup, mirroring the
        plan cache's race guards: a registration landing mid-execution makes
        the store a no-op, and the version inside the key makes stale
        entries unreachable.
        """
        database = self.database
        version = database.catalog.version
        cached = database.cached_result(result, version)
        if cached is not None:
            result.execution = cached
            result.from_result_cache = True
            return result
        with raise_as(ExecutionError,
                      "executing %s failed" % result.query.name):
            result.execution = Executor(self.context).execute(
                result.optimization.plan, cancel=cancel)
        database.store_result(result, version)
        return result

    def _resolve_query(self, query: QueryLike, name: str) -> QueryBlock:
        if isinstance(query, QueryBlock):
            return query
        return self.database.bind(query, name=name)

    def _plan_block(self, block: QueryBlock,
                    mode: Optional[OptimizerMode],
                    settings: Optional[BfCboSettings]) -> QueryResult:
        mode = mode or self.mode or self.database.default_mode
        # Knob layering by specificity: an explicit per-call settings object
        # is taken verbatim (no session/database constructor knobs); the
        # session's knobs apply to everything less specific.
        explicit = settings is not None
        if settings is None:
            settings = self.settings
        overrides = None if explicit else (self.planner_overrides or None)
        started = time.perf_counter()
        optimization, from_cache = self.database.optimize(
            block, mode, settings, overrides=overrides,
            verify=self.verify_plans)
        planning_time_ms = (time.perf_counter() - started) * 1e3
        return QueryResult(query=block, mode=mode,
                           settings=optimization.settings,
                           optimization=optimization,
                           planning_time_ms=planning_time_ms,
                           from_plan_cache=from_cache)
