"""The embeddable session API: one entry point over the whole pipeline.

Instead of hand-wiring ``build_catalog → bind_sql → Optimizer.optimize →
ExecutionContext.for_catalog → Executor.execute``, consumers create a
:class:`Database` (which owns the catalog, the default optimizer
configuration and the shared plan / enumeration-sequence caches), open a
:class:`Session` with :meth:`Database.connect`, and call
:meth:`Session.execute` / :meth:`Session.explain` /
:meth:`Session.prepare`::

    from repro.api import Database

    db = Database.from_tpch(scale_factor=0.05)
    session = db.connect()
    result = session.execute("select count(*) as n from orders")
    print(result.column("n"), db.cache_stats())

The configuration surface (:class:`OptimizerMode`, :class:`BfCboSettings`),
the typed error hierarchy, the plan-introspection helpers
(:func:`explain`, :func:`join_order_summary`, :func:`bloom_filter_summary`)
and the schema toolkit needed to define ad-hoc catalogs are re-exported here
so examples and embedders need only ``repro.api`` imports.
"""

from ..core.explain import bloom_filter_summary, explain, join_order_summary
from ..core.heuristics import BfCboSettings, scaled_settings
from ..core.optimizer import OptimizationResult, OptimizerMode
from ..errors import (
    AdmissionError,
    ExecutionError,
    PlanningError,
    QueryCancelledError,
    ReproError,
    SessionClosedError,
)
from ..executor.cancel import CancelToken
from ..sql.errors import SqlError
from ..storage import (
    BOOL,
    Catalog,
    DATE,
    FLOAT64,
    ForeignKey,
    INT64,
    STRING,
    make_schema,
    synthetic_statistics,
)
from ..textutil import format_table, percent_reduction
from .database import CacheStats, Database
from .session import PreparedQuery, QueryResult, Session

__all__ = [
    "AdmissionError",
    "BOOL",
    "BfCboSettings",
    "CacheStats",
    "CancelToken",
    "Catalog",
    "DATE",
    "Database",
    "ExecutionError",
    "FLOAT64",
    "ForeignKey",
    "INT64",
    "OptimizationResult",
    "OptimizerMode",
    "PlanningError",
    "PreparedQuery",
    "QueryCancelledError",
    "QueryResult",
    "ReproError",
    "STRING",
    "Session",
    "SessionClosedError",
    "SqlError",
    "bloom_filter_summary",
    "explain",
    "format_table",
    "join_order_summary",
    "make_schema",
    "percent_reduction",
    "scaled_settings",
    "synthetic_statistics",
]
