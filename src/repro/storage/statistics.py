"""Table and column statistics used by the cost-based optimizer.

The optimizer in the paper relies on the usual bottom-up cardinality machinery:
base-table row counts, per-column distinct counts (NDV), min/max bounds, and
equi-height histograms for range predicates.  Statistics are computed once per
table (``collect_statistics``) and stored in the catalog; the optimizer never
touches raw data during planning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from .table import Table

#: Number of buckets used for equi-height histograms.
DEFAULT_HISTOGRAM_BUCKETS = 64


@dataclass
class Histogram:
    """Equi-height histogram over a numeric (or date) column."""

    bounds: np.ndarray          # bucket upper bounds, ascending, len == buckets
    min_value: float
    max_value: float
    num_rows: int

    def selectivity_below(self, value: float, inclusive: bool = True) -> float:
        """Estimated fraction of rows with column value <= / < ``value``."""
        if self.num_rows == 0:
            return 0.0
        if value < self.min_value:
            return 0.0
        if value >= self.max_value:
            return 1.0
        # Each bucket holds ~1/len(bounds) of the rows; interpolate within the
        # bucket that contains ``value``.
        idx = int(np.searchsorted(self.bounds, value, side="right" if inclusive else "left"))
        idx = min(idx, len(self.bounds) - 1)
        lower = self.min_value if idx == 0 else float(self.bounds[idx - 1])
        upper = float(self.bounds[idx])
        frac_within = 0.0
        if upper > lower:
            frac_within = min(1.0, max(0.0, (value - lower) / (upper - lower)))
        return min(1.0, (idx + frac_within) / len(self.bounds))

    def selectivity_range(self, low: Optional[float], high: Optional[float],
                          low_inclusive: bool = True,
                          high_inclusive: bool = True) -> float:
        """Estimated fraction of rows with value in ``[low, high]``."""
        hi = 1.0 if high is None else self.selectivity_below(high, high_inclusive)
        lo = 0.0 if low is None else self.selectivity_below(low, not low_inclusive)
        return max(0.0, hi - lo)


@dataclass
class ColumnStatistics:
    """Statistics for one column of one table."""

    name: str
    num_rows: int
    ndv: int
    null_fraction: float = 0.0
    min_value: Optional[float] = None
    max_value: Optional[float] = None
    histogram: Optional[Histogram] = None
    most_common_values: Dict[object, float] = field(default_factory=dict)

    @property
    def valid_fraction(self) -> float:
        """Fraction of rows that are non-NULL."""
        return min(1.0, max(0.0, 1.0 - self.null_fraction))

    def equality_selectivity(self, value=None) -> float:
        """Selectivity of ``col = value`` (or an unknown constant).

        NDV, histogram and MCVs are computed over valid rows only, so the
        uniform fallbacks are scaled by :attr:`valid_fraction` — NULL rows
        can never satisfy an equality (MCV frequencies are already
        per-total-row and need no scaling).
        """
        if self.num_rows == 0:
            return 0.0
        if value is not None and value in self.most_common_values:
            return self.most_common_values[value]
        if self.ndv <= 0:
            return self.valid_fraction / max(1, self.num_rows)
        return min(1.0, self.valid_fraction / self.ndv)

    def range_selectivity(self, low=None, high=None,
                          low_inclusive: bool = True,
                          high_inclusive: bool = True) -> float:
        """Selectivity of a range predicate using the histogram if present.

        The histogram covers valid rows only; the result is scaled by
        :attr:`valid_fraction` because NULL rows satisfy no range.
        """
        return self.valid_fraction * self._valid_range_selectivity(
            low, high, low_inclusive, high_inclusive)

    def _valid_range_selectivity(self, low, high, low_inclusive,
                                 high_inclusive) -> float:
        if self.histogram is not None:
            return self.histogram.selectivity_range(low, high, low_inclusive,
                                                    high_inclusive)
        if self.min_value is None or self.max_value is None:
            return 1.0 / 3.0  # classic default guess for an unbounded range
        span = float(self.max_value) - float(self.min_value)
        if span <= 0:
            return 1.0
        lo = float(self.min_value) if low is None else max(float(low), float(self.min_value))
        hi = float(self.max_value) if high is None else min(float(high), float(self.max_value))
        if hi < lo:
            return 0.0
        return min(1.0, (hi - lo) / span)

    def ndv_after_filter(self, selectivity: float) -> float:
        """Estimated distinct count surviving a filter of given selectivity.

        Uses the standard "balls into bins" style estimate: with ``n`` rows
        uniformly spread over ``d`` distinct values, keeping a fraction ``s``
        of rows keeps approximately ``d * (1 - (1 - s)^(n/d))`` distinct values.
        """
        if self.ndv <= 0 or self.num_rows <= 0:
            return 0.0
        selectivity = min(1.0, max(0.0, selectivity))
        rows_per_value = max(1.0, self.num_rows / self.ndv)
        survived = self.ndv * (1.0 - (1.0 - selectivity) ** rows_per_value)
        return max(0.0, min(float(self.ndv), survived))


@dataclass
class TableStatistics:
    """Statistics for a whole table."""

    table_name: str
    num_rows: int
    columns: Dict[str, ColumnStatistics] = field(default_factory=dict)

    def column(self, name: str) -> ColumnStatistics:
        """Statistics for column ``name``; a permissive default if missing."""
        if name in self.columns:
            return self.columns[name]
        return ColumnStatistics(name=name, num_rows=self.num_rows,
                                ndv=max(1, self.num_rows))

    @property
    def estimated_row_width(self) -> int:
        """Estimated bytes per materialised row (eight per column).

        Every physical column in this engine is eight bytes wide (int64,
        float64, days-since-epoch dates) except strings, which this
        deliberately underestimates — admission estimates feed a
        *degradation* decision (queue vs dispatch), where a low estimate
        merely means the executor spills instead.
        """
        return 8 * max(1, len(self.columns))

    @property
    def estimated_bytes(self) -> int:
        """Estimated bytes a full scan of the table materialises."""
        return self.num_rows * self.estimated_row_width


def _column_statistics(name: str, values: np.ndarray,
                       histogram_buckets: int,
                       null_mask: Optional[np.ndarray] = None,
                       ) -> ColumnStatistics:
    """Compute statistics for a single column array.

    With a null mask, value statistics (NDV, min/max, histogram, MCVs) are
    computed over the valid rows only and ``null_fraction`` records the
    masked share — the filler stored under the mask must never contaminate
    selectivity estimates.
    """
    num_rows = int(values.shape[0])
    null_fraction = 0.0
    if null_mask is not None and num_rows:
        null_fraction = float(null_mask.sum()) / num_rows
        values = values[~null_mask]
    if num_rows == 0:
        return ColumnStatistics(name=name, num_rows=0, ndv=0)
    if values.shape[0] == 0:
        return ColumnStatistics(name=name, num_rows=num_rows, ndv=0,
                                null_fraction=null_fraction)
    unique = np.unique(values)
    ndv = int(unique.shape[0])
    stats = ColumnStatistics(name=name, num_rows=num_rows, ndv=ndv,
                             null_fraction=null_fraction)
    if values.dtype.kind in ("i", "u", "f", "M"):
        numeric = values.astype(np.float64) if values.dtype.kind != "M" else values.view(np.int64).astype(np.float64)
        stats.min_value = float(numeric.min())
        stats.max_value = float(numeric.max())
        buckets = min(histogram_buckets, max(1, ndv))
        quantiles = np.quantile(numeric, np.linspace(0.0, 1.0, buckets + 1)[1:])
        stats.histogram = Histogram(bounds=quantiles,
                                    min_value=stats.min_value,
                                    max_value=stats.max_value,
                                    num_rows=num_rows)
    if ndv <= 64:
        # Small domains (flags, nations, ...) get exact value frequencies.
        counts = {}
        for value in unique:
            counts[value if not isinstance(value, np.generic) else value.item()] = (
                float(np.count_nonzero(values == value)) / num_rows)
        stats.most_common_values = counts
    return stats


def collect_statistics(table: Table,
                       histogram_buckets: int = DEFAULT_HISTOGRAM_BUCKETS) -> TableStatistics:
    """Scan a table once and compute statistics for every column."""
    stats = TableStatistics(table_name=table.name, num_rows=table.num_rows)
    for name in table.column_names:
        stats.columns[name] = _column_statistics(name, table.column(name),
                                                 histogram_buckets,
                                                 null_mask=table.null_mask(name))
    return stats


def synthetic_statistics(table_name: str, num_rows: int,
                         column_ndvs: Dict[str, int],
                         column_ranges: Optional[Dict[str, tuple]] = None) -> TableStatistics:
    """Create statistics without data, for paper-scale what-if planning.

    The running example of Section 3 and the planner-only experiments use the
    paper's row counts (hundreds of millions of rows) directly; this helper
    fabricates the corresponding statistics objects.
    """
    stats = TableStatistics(table_name=table_name, num_rows=num_rows)
    column_ranges = column_ranges or {}
    for column, ndv in column_ndvs.items():
        col_stats = ColumnStatistics(name=column, num_rows=num_rows,
                                     ndv=int(ndv))
        if column in column_ranges:
            low, high = column_ranges[column]
            col_stats.min_value = float(low)
            col_stats.max_value = float(high)
        stats.columns[column] = col_stats
    return stats
