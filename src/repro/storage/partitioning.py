"""Range partitioning of tables.

The paper stores the TPC-H tables "in a columnar format, range-partitioned by
date" (Section 4.1).  Partitioning does not change plan selection in our
reproduction, but the storage layer supports it so that scans can report how
many partitions were touched, and so partition pruning by date predicates can
be tested as an independent feature.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .table import Table


@dataclass(frozen=True)
class RangePartitionSpec:
    """Defines range partitioning of a table on a single numeric/date column.

    Attributes:
        column: Partitioning column name.
        boundaries: Ascending upper bounds; partition ``i`` holds values in
            ``(boundaries[i-1], boundaries[i]]`` with an implicit final
            partition for values above the last boundary.
    """

    column: str
    boundaries: Tuple[float, ...]

    @property
    def num_partitions(self) -> int:
        """Number of partitions produced by this spec."""
        return len(self.boundaries) + 1

    def partition_index(self, value: float) -> int:
        """Partition index a single value falls into."""
        return int(np.searchsorted(np.asarray(self.boundaries), value, side="left"))

    def partition_indices(self, values: np.ndarray) -> np.ndarray:
        """Vectorised partition assignment for a value array."""
        return np.searchsorted(np.asarray(self.boundaries), values, side="left")

    def prune(self, low: Optional[float], high: Optional[float]) -> List[int]:
        """Partitions that may contain values within ``[low, high]``."""
        first = 0 if low is None else self.partition_index(low)
        last = self.num_partitions - 1 if high is None else self.partition_index(high)
        return list(range(first, min(last, self.num_partitions - 1) + 1))


class PartitionedTable:
    """A table split into range partitions.

    The whole-table view (``table``) is still available so that the executor
    can run unpartitioned scans; per-partition tables back partition-pruned
    scans.
    """

    def __init__(self, table: Table, spec: RangePartitionSpec) -> None:
        if spec.column not in table.column_names:
            raise ValueError("partition column %r not in table %r"
                             % (spec.column, table.name))
        self.table = table
        self.spec = spec
        assignments = spec.partition_indices(table.column(spec.column))
        self.partitions: List[Table] = []
        for part in range(spec.num_partitions):
            mask = assignments == part
            self.partitions.append(table.select_rows(mask))

    @property
    def num_partitions(self) -> int:
        """Number of partitions."""
        return self.spec.num_partitions

    def partition(self, index: int) -> Table:
        """The table fragment stored in partition ``index``."""
        return self.partitions[index]

    def fused(self) -> Table:
        """The partitions concatenated in partition order, offsets recorded.

        The returned :class:`Table` carries ``partition_offsets``, so the
        executor's morsel planner (:meth:`Table.morsel_spans`) emits
        per-partition morsels for it: registering a fused table in the
        catalog is how a workload opts a table into partition-aligned
        parallel scanning.
        """
        columns = {}
        masks = {}
        offsets: List[int] = []
        total = 0
        for part in self.partitions:
            offsets.append(total)
            total += part.num_rows
        for name in self.table.column_names:
            pieces = [part.column(name) for part in self.partitions]
            columns[name] = (np.concatenate(pieces) if pieces
                             else np.asarray([]))
            mask_pieces = [part.null_mask(name) for part in self.partitions]
            if any(mask is not None for mask in mask_pieces):
                masks[name] = np.concatenate([
                    mask if mask is not None
                    else np.zeros(part.num_rows, dtype=bool)
                    for part, mask in zip(self.partitions, mask_pieces)])
        return Table(self.table.schema, columns, null_masks=masks,
                     partition_offsets=offsets)

    def scan(self, low: Optional[float] = None,
             high: Optional[float] = None) -> Tuple[Table, int]:
        """Scan with partition pruning on the partition column.

        Returns the concatenation of all partitions that may contain rows in
        ``[low, high]`` together with the number of partitions touched.
        """
        wanted = self.spec.prune(low, high)
        if len(wanted) == self.num_partitions:
            return self.table, self.num_partitions
        columns = {}
        masks = {}
        for name in self.table.column_names:
            pieces = [self.partitions[i].column(name) for i in wanted]
            columns[name] = np.concatenate(pieces) if pieces else np.asarray([])
            mask_pieces = [self.partitions[i].null_mask(name) for i in wanted]
            if any(mask is not None for mask in mask_pieces):
                masks[name] = np.concatenate([
                    mask if mask is not None
                    else np.zeros(self.partitions[i].num_rows, dtype=bool)
                    for i, mask in zip(wanted, mask_pieces)])
        return Table(self.table.schema, columns, null_masks=masks), len(wanted)
