"""Columnar storage substrate: types, tables, schemas, statistics, catalog."""

from .catalog import Catalog, CatalogError
from .column import ColumnData, ColumnDef
from .partitioning import PartitionedTable, RangePartitionSpec
from .schema import ForeignKey, TableSchema, make_schema
from .statistics import (
    ColumnStatistics,
    Histogram,
    TableStatistics,
    collect_statistics,
    synthetic_statistics,
)
from .table import Table
from .types import BOOL, DATE, FLOAT64, INT64, STRING, DataType, TypeKind, date_to_int, parse_date

__all__ = [
    "Catalog",
    "CatalogError",
    "ColumnData",
    "ColumnDef",
    "ColumnStatistics",
    "DataType",
    "ForeignKey",
    "Histogram",
    "PartitionedTable",
    "RangePartitionSpec",
    "Table",
    "TableSchema",
    "TableStatistics",
    "TypeKind",
    "collect_statistics",
    "synthetic_statistics",
    "make_schema",
    "date_to_int",
    "parse_date",
    "INT64",
    "FLOAT64",
    "STRING",
    "DATE",
    "BOOL",
]
