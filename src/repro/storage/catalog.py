"""The catalog: tables, schemas, statistics and key constraints.

The optimizer plans exclusively against the catalog — it looks up schemas,
statistics and foreign-key metadata but never touches the data itself.  The
executor, in contrast, fetches the concrete :class:`~repro.storage.table.Table`
objects to run a plan.  A catalog can also be *statistics-only* (no data), which
is how the planner-only experiments reproduce the paper's SF100 cardinalities
without materialising 100 GB of rows.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from .schema import ForeignKey, TableSchema
from .statistics import TableStatistics, collect_statistics
from .table import Table


class CatalogError(KeyError):
    """Raised when a catalog lookup fails."""


class Catalog:
    """Registry of table schemas, optional data and optional statistics."""

    def __init__(self) -> None:
        self._schemas: Dict[str, TableSchema] = {}
        self._tables: Dict[str, Table] = {}
        self._statistics: Dict[str, TableStatistics] = {}
        self._version = 0

    @property
    def version(self) -> int:
        """Monotonic counter bumped by every schema/data/statistics change.

        Plan caches key their validity on this: any registration — whether it
        goes through :class:`repro.api.Database` or straight through the
        catalog — invalidates previously cached plans.
        """
        return self._version

    # -- registration -------------------------------------------------------

    def register_table(self, table: Table,
                       statistics: Optional[TableStatistics] = None,
                       analyze: bool = True) -> None:
        """Register a materialised table (and optionally analyse it)."""
        name = table.name.lower()
        self._schemas[name] = table.schema
        self._tables[name] = table
        if statistics is not None:
            self._statistics[name] = statistics
        elif analyze:
            self._statistics[name] = collect_statistics(table)
        self._version += 1

    def register_schema(self, schema: TableSchema,
                        statistics: Optional[TableStatistics] = None) -> None:
        """Register a schema without data (statistics-only planning)."""
        name = schema.name.lower()
        self._schemas[name] = schema
        if statistics is not None:
            self._statistics[name] = statistics
        self._version += 1

    def set_statistics(self, table_name: str,
                       statistics: TableStatistics) -> None:
        """Attach or replace statistics for a registered table."""
        name = table_name.lower()
        if name not in self._schemas:
            raise CatalogError("unknown table %r" % table_name)
        self._statistics[name] = statistics
        self._version += 1

    # -- lookups --------------------------------------------------------------

    def has_table(self, name: str) -> bool:
        """True if a schema with this name is registered."""
        return name.lower() in self._schemas

    def schema(self, name: str) -> TableSchema:
        """Schema for ``name`` (case-insensitive)."""
        try:
            return self._schemas[name.lower()]
        except KeyError:
            raise CatalogError("unknown table %r" % name) from None

    def table(self, name: str) -> Table:
        """Materialised data for ``name``; raises if statistics-only."""
        key = name.lower()
        if key not in self._tables:
            raise CatalogError("table %r has no materialised data" % name)
        return self._tables[key]

    def has_data(self, name: str) -> bool:
        """True if the table has materialised rows in the catalog."""
        return name.lower() in self._tables

    def statistics(self, name: str) -> TableStatistics:
        """Statistics for ``name``; falls back to a row count of the data."""
        key = name.lower()
        if key in self._statistics:
            return self._statistics[key]
        if key in self._tables:
            stats = collect_statistics(self._tables[key])
            self._statistics[key] = stats
            return stats
        raise CatalogError("no statistics available for table %r" % name)

    def table_names(self) -> List[str]:
        """All registered table names, sorted."""
        return sorted(self._schemas)

    # -- key metadata ----------------------------------------------------------

    def foreign_key(self, table: str, column: str) -> Optional[ForeignKey]:
        """The foreign key declared on ``table.column``, if any."""
        return self.schema(table).foreign_key_for(column)

    def is_primary_key(self, table: str, column: str) -> bool:
        """True if ``column`` is the single-column primary key of ``table``."""
        return self.schema(table).is_primary_key_column(column)

    def is_foreign_key_reference(self, apply_table: str, apply_column: str,
                                 build_table: str, build_column: str) -> bool:
        """True if ``apply_table.apply_column`` is an FK referencing
        ``build_table.build_column`` (used by Heuristic 3)."""
        fk = self.foreign_key(apply_table, apply_column)
        if fk is None:
            return False
        return (fk.ref_table.lower() == build_table.lower()
                and fk.ref_column.lower() == build_column.lower())
