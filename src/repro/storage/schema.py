"""Table schemas and key constraints."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .column import ColumnDef
from .types import DataType


@dataclass(frozen=True)
class ForeignKey:
    """A single-column foreign key reference.

    Attributes:
        column: Referencing column on this table.
        ref_table: Referenced (parent) table name.
        ref_column: Referenced column, expected to be the parent's primary key.
    """

    column: str
    ref_table: str
    ref_column: str


@dataclass
class TableSchema:
    """Schema of a base table: columns plus primary/foreign key metadata."""

    name: str
    columns: List[ColumnDef]
    primary_key: Tuple[str, ...] = ()
    foreign_keys: List[ForeignKey] = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise ValueError("duplicate column names in table %r" % self.name)
        self._by_name: Dict[str, ColumnDef] = {c.name: c for c in self.columns}
        for key_col in self.primary_key:
            if key_col not in self._by_name:
                raise ValueError("primary key column %r not in table %r"
                                 % (key_col, self.name))
        for fk in self.foreign_keys:
            if fk.column not in self._by_name:
                raise ValueError("foreign key column %r not in table %r"
                                 % (fk.column, self.name))

    def has_column(self, name: str) -> bool:
        """True if the schema defines a column called ``name``."""
        return name in self._by_name

    def column(self, name: str) -> ColumnDef:
        """Column definition for ``name`` (raises ``KeyError`` otherwise)."""
        return self._by_name[name]

    def column_type(self, name: str) -> DataType:
        """Logical type of column ``name``."""
        return self._by_name[name].dtype

    def foreign_key_for(self, column: str) -> Optional[ForeignKey]:
        """Foreign key declared on ``column``, if any."""
        for fk in self.foreign_keys:
            if fk.column == column:
                return fk
        return None

    def is_primary_key_column(self, column: str) -> bool:
        """True if ``column`` is the table's (single-column) primary key."""
        return len(self.primary_key) == 1 and self.primary_key[0] == column

    @property
    def row_width_bytes(self) -> int:
        """Approximate width of one row, used for data-movement costing."""
        return sum(c.dtype.width_bytes for c in self.columns)


def make_schema(name: str, columns: Sequence[Tuple],
                primary_key: Sequence[str] = (),
                foreign_keys: Sequence[ForeignKey] = ()) -> TableSchema:
    """Convenience constructor used by the TPC-H schema and by tests.

    Each column is either ``(name, dtype)`` or ``(name, dtype, nullable)``.
    """
    col_defs = [ColumnDef(*column) for column in columns]
    return TableSchema(name=name, columns=col_defs,
                       primary_key=tuple(primary_key),
                       foreign_keys=list(foreign_keys))
