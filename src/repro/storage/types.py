"""Logical column types for the storage layer.

The reproduction engine only needs the handful of scalar types that TPC-H and
the paper's running examples use.  Each logical type maps to a numpy dtype for
column storage and carries a per-value width used by the cost model to charge
for data movement (broadcast / redistribution).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np


class TypeKind(enum.Enum):
    """Enumeration of supported logical scalar types."""

    INT64 = "int64"
    FLOAT64 = "float64"
    STRING = "string"
    DATE = "date"
    BOOL = "bool"


@dataclass(frozen=True)
class DataType:
    """A logical data type plus its physical representation.

    Attributes:
        kind: Logical type kind.
        width_bytes: Average per-value width charged by the cost model.
    """

    kind: TypeKind
    width_bytes: int

    @property
    def numpy_dtype(self) -> np.dtype:
        """Numpy dtype used to store column values of this type."""
        mapping = {
            TypeKind.INT64: np.dtype(np.int64),
            TypeKind.FLOAT64: np.dtype(np.float64),
            TypeKind.STRING: np.dtype(object),
            TypeKind.DATE: np.dtype(np.int64),  # days since epoch
            TypeKind.BOOL: np.dtype(bool),
        }
        return mapping[self.kind]

    @property
    def is_numeric(self) -> bool:
        """True for types that support arithmetic and range predicates."""
        return self.kind in (TypeKind.INT64, TypeKind.FLOAT64, TypeKind.DATE)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.kind.value


INT64 = DataType(TypeKind.INT64, 8)
FLOAT64 = DataType(TypeKind.FLOAT64, 8)
STRING = DataType(TypeKind.STRING, 16)
DATE = DataType(TypeKind.DATE, 8)
BOOL = DataType(TypeKind.BOOL, 1)


def date_to_int(year: int, month: int, day: int) -> int:
    """Encode a calendar date as days since 1970-01-01 (proleptic, naive).

    The generator and the query predicates only ever compare dates, so a
    monotone integer encoding is sufficient; we use an exact day count so that
    intervals like "90 days" behave as expected.
    """
    import datetime

    return (datetime.date(year, month, day) - datetime.date(1970, 1, 1)).days


def parse_date(text: str) -> int:
    """Parse a ``YYYY-MM-DD`` literal into the integer date encoding."""
    parts = text.strip().strip("'\"").split("-")
    if len(parts) != 3:
        raise ValueError("invalid date literal: %r" % text)
    return date_to_int(int(parts[0]), int(parts[1]), int(parts[2]))
