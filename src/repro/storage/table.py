"""Column-major in-memory tables.

A :class:`Table` stores its data as a mapping from column name to numpy array,
which lets the executor run whole-column (vectorised) operations.  Tables know
their schema, may be range partitioned (see :mod:`repro.storage.partitioning`)
and expose simple row-level accessors that the test-suite uses to verify query
results against brute-force computation.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .column import ColumnData, ColumnDef
from .schema import TableSchema


class Table:
    """An immutable, column-major table instance."""

    def __init__(self, schema: TableSchema,
                 columns: Mapping[str, np.ndarray]) -> None:
        self.schema = schema
        self._columns: Dict[str, ColumnData] = {}
        lengths = set()
        for col_def in schema.columns:
            if col_def.name not in columns:
                raise ValueError("missing data for column %r of table %r"
                                 % (col_def.name, schema.name))
            data = np.asarray(columns[col_def.name])
            self._columns[col_def.name] = ColumnData(col_def, data)
            lengths.add(data.shape[0])
        extra = set(columns) - {c.name for c in schema.columns}
        if extra:
            raise ValueError("unknown columns %r for table %r" % (sorted(extra),
                                                                  schema.name))
        if len(lengths) > 1:
            raise ValueError("columns of table %r have differing lengths: %r"
                             % (schema.name, sorted(lengths)))
        self._num_rows = lengths.pop() if lengths else 0

    # -- basic accessors ---------------------------------------------------

    @property
    def name(self) -> str:
        """Table name from the schema."""
        return self.schema.name

    @property
    def num_rows(self) -> int:
        """Number of rows stored."""
        return self._num_rows

    @property
    def column_names(self) -> List[str]:
        """Column names in schema order."""
        return [c.name for c in self.schema.columns]

    def column(self, name: str) -> np.ndarray:
        """Raw numpy array backing column ``name``."""
        if name not in self._columns:
            raise KeyError("table %r has no column %r" % (self.name, name))
        return self._columns[name].values

    def column_def(self, name: str) -> ColumnDef:
        """Schema definition for column ``name``."""
        return self._columns[name].definition

    def __len__(self) -> int:
        return self._num_rows

    def __contains__(self, column_name: str) -> bool:
        return column_name in self._columns

    # -- row-oriented helpers (testing / verification) ----------------------

    def rows(self) -> Iterator[Tuple]:
        """Iterate rows as tuples in schema column order (test helper)."""
        arrays = [self.column(name) for name in self.column_names]
        for i in range(self._num_rows):
            yield tuple(arr[i] for arr in arrays)

    def to_dict(self) -> Dict[str, np.ndarray]:
        """Return the underlying column arrays keyed by column name."""
        return {name: self.column(name) for name in self.column_names}

    # -- derivation ---------------------------------------------------------

    def select_rows(self, mask_or_indices: np.ndarray) -> "Table":
        """Return a new table containing only the selected rows."""
        selector = np.asarray(mask_or_indices)
        new_columns = {name: self.column(name)[selector]
                       for name in self.column_names}
        return Table(self.schema, new_columns)

    def head(self, n: int) -> "Table":
        """Return the first ``n`` rows as a new table."""
        return self.select_rows(np.arange(min(n, self._num_rows)))

    @classmethod
    def from_rows(cls, schema: TableSchema,
                  rows: Sequence[Sequence]) -> "Table":
        """Build a table from an iterable of row tuples (mostly for tests)."""
        names = [c.name for c in schema.columns]
        if rows:
            transposed = list(zip(*rows))
        else:
            transposed = [[] for _ in names]
        columns = {}
        for col_def, values in zip(schema.columns, transposed):
            columns[col_def.name] = np.asarray(list(values),
                                               dtype=col_def.dtype.numpy_dtype)
        return cls(schema, columns)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "Table(%s, rows=%d, cols=%d)" % (self.name, self._num_rows,
                                                len(self.column_names))
