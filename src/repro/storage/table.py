"""Column-major in-memory tables.

A :class:`Table` stores its data as a mapping from column name to numpy array,
which lets the executor run whole-column (vectorised) operations.  Tables know
their schema, may be range partitioned (see :mod:`repro.storage.partitioning`)
and expose simple row-level accessors that the test-suite uses to verify query
results against brute-force computation.

Nullable columns carry a boolean *null mask* (``True`` = NULL) next to their
value array; NULL-free columns keep ``mask=None``, the fast path preserved
through the whole executor (see ``docs/nulls.md``).  Masks are either passed
explicitly (``null_masks=``) or inferred for nullable columns from NaN floats
and ``None``-bearing object arrays.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from .column import ColumnData, ColumnDef
from .schema import TableSchema

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..executor.shm import ArrayRef, ShmArena


def infer_null_mask(values: np.ndarray) -> Optional[np.ndarray]:
    """Mask of positions holding NaN (float), NaT (datetime64) or ``None``
    (object) markers.

    Returns ``None`` when nothing in the array denotes a NULL — including for
    dtypes that cannot encode one (integers, strings, bools).
    """
    values = np.asarray(values)
    if values.dtype.kind == "f":
        mask = np.isnan(values)
        return mask if mask.any() else None
    if values.dtype.kind == "M":
        mask = np.isnat(values)
        return mask if mask.any() else None
    if values.dtype.kind == "O":
        mask = np.fromiter((v is None for v in values), dtype=bool,
                           count=values.shape[0])
        return mask if mask.any() else None
    return None


class Table:
    """An immutable, column-major table instance.

    ``partition_offsets`` optionally records the row offsets at which the
    table's range partitions start (ascending, first entry 0).  The executor
    uses them to emit *per-partition morsels*: morsel boundaries never cross
    a partition boundary, so partition-local processing order is preserved
    and results concatenate back in canonical partition order (see
    :meth:`morsel_spans` and ``docs/executor.md``).
    """

    def __init__(self, schema: TableSchema,
                 columns: Mapping[str, np.ndarray],
                 null_masks: Optional[Mapping[str, Optional[np.ndarray]]] = None,
                 partition_offsets: Optional[Sequence[int]] = None,
                 ) -> None:
        self.schema = schema
        self._columns: Dict[str, ColumnData] = {}
        null_masks = null_masks or {}
        lengths = set()
        for col_def in schema.columns:
            if col_def.name not in columns:
                raise ValueError("missing data for column %r of table %r"
                                 % (col_def.name, schema.name))
            data = np.asarray(columns[col_def.name])
            mask = null_masks.get(col_def.name)
            if mask is None and col_def.nullable:
                mask = infer_null_mask(data)
            self._columns[col_def.name] = ColumnData(col_def, data, mask)
            lengths.add(data.shape[0])
        extra = set(columns) - {c.name for c in schema.columns}
        if extra:
            raise ValueError("unknown columns %r for table %r" % (sorted(extra),
                                                                  schema.name))
        if len(lengths) > 1:
            raise ValueError("columns of table %r have differing lengths: %r"
                             % (schema.name, sorted(lengths)))
        self._num_rows = lengths.pop() if lengths else 0
        self._partition_offsets: Optional[Tuple[int, ...]] = None
        if partition_offsets is not None:
            offsets = tuple(int(o) for o in partition_offsets)
            if offsets and (offsets[0] != 0
                            or any(a > b for a, b in zip(offsets, offsets[1:]))
                            or offsets[-1] > self._num_rows):
                raise ValueError(
                    "partition offsets %r are not ascending offsets into %d "
                    "rows" % (offsets, self._num_rows))
            self._partition_offsets = offsets or None

    # -- basic accessors ---------------------------------------------------

    @property
    def name(self) -> str:
        """Table name from the schema."""
        return self.schema.name

    @property
    def num_rows(self) -> int:
        """Number of rows stored."""
        return self._num_rows

    @property
    def column_names(self) -> List[str]:
        """Column names in schema order."""
        return [c.name for c in self.schema.columns]

    def column(self, name: str) -> np.ndarray:
        """Raw numpy array backing column ``name``."""
        if name not in self._columns:
            raise KeyError("table %r has no column %r" % (self.name, name))
        return self._columns[name].values

    def null_mask(self, name: str) -> Optional[np.ndarray]:
        """Null mask of column ``name`` (``None`` when all rows are valid)."""
        if name not in self._columns:
            raise KeyError("table %r has no column %r" % (self.name, name))
        return self._columns[name].null_mask

    def column_data(self, name: str) -> ColumnData:
        """The full column container (definition, values and mask)."""
        if name not in self._columns:
            raise KeyError("table %r has no column %r" % (self.name, name))
        return self._columns[name]

    def column_def(self, name: str) -> ColumnDef:
        """Schema definition for column ``name``."""
        return self._columns[name].definition

    def __len__(self) -> int:
        return self._num_rows

    def __contains__(self, column_name: str) -> bool:
        return column_name in self._columns

    # -- morsels -------------------------------------------------------------

    @property
    def partition_offsets(self) -> Optional[Tuple[int, ...]]:
        """Row offsets where range partitions start (``None`` = unpartitioned)."""
        return self._partition_offsets

    def morsel_spans(self, morsel_size: int) -> List[Tuple[int, int]]:
        """Contiguous ``(start, stop)`` row spans covering the whole table.

        Spans are emitted in canonical order (ascending row number, which for
        a partitioned table is ascending partition number) and each span is
        at most ``morsel_size`` rows and never crosses a partition boundary.
        Concatenating per-span results in span order therefore reproduces the
        whole-table result exactly.
        """
        if self._num_rows == 0:
            return []
        morsel_size = max(int(morsel_size), 1)
        segment_starts = list(self._partition_offsets or (0,))
        segment_bounds = segment_starts[1:] + [self._num_rows]
        spans: List[Tuple[int, int]] = []
        for seg_start, seg_stop in zip(segment_starts, segment_bounds):
            for start in range(seg_start, seg_stop, morsel_size):
                spans.append((start, min(start + morsel_size, seg_stop)))
        return spans

    def export_columns(self, arena: "ShmArena",
                       names: Optional[Sequence[str]] = None,
                       ) -> Dict[str, Tuple["ArrayRef", Optional["ArrayRef"]]]:
        """Shared-memory refs ``{name: (values_ref, mask_ref)}`` per column.

        The storage-side entry point of the process backend's zero-copy
        shipping: each listed column (default: all) is exported through
        ``arena`` at most once regardless of how many morsels reference it
        (see :meth:`ColumnData.export
        <repro.storage.column.ColumnData.export>`).
        """
        return {name: self.column_data(name).export(arena)
                for name in (self.column_names if names is None else names)}

    # -- row-oriented helpers (testing / verification) ----------------------

    def rows(self) -> Iterator[Tuple]:
        """Iterate rows as tuples in schema column order (test helper).

        NULL cells yield ``None`` regardless of the filler stored underneath.
        """
        arrays = [self.column(name) for name in self.column_names]
        masks = [self.null_mask(name) for name in self.column_names]
        for i in range(self._num_rows):
            yield tuple(None if mask is not None and mask[i] else arr[i]
                        for arr, mask in zip(arrays, masks))

    def to_dict(self) -> Dict[str, np.ndarray]:
        """Return the underlying column arrays keyed by column name."""
        return {name: self.column(name) for name in self.column_names}

    # -- derivation ---------------------------------------------------------

    def select_rows(self, mask_or_indices: np.ndarray) -> "Table":
        """Return a new table containing only the selected rows."""
        selector = np.asarray(mask_or_indices)
        new_columns = {}
        new_masks = {}
        for name in self.column_names:
            new_columns[name] = self.column(name)[selector]
            mask = self.null_mask(name)
            if mask is not None:
                new_masks[name] = mask[selector]
        return Table(self.schema, new_columns, null_masks=new_masks)

    def head(self, n: int) -> "Table":
        """Return the first ``n`` rows as a new table."""
        return self.select_rows(np.arange(min(n, self._num_rows)))

    @classmethod
    def from_rows(cls, schema: TableSchema,
                  rows: Sequence[Sequence]) -> "Table":
        """Build a table from an iterable of row tuples (mostly for tests).

        ``None`` cells become NULLs (the column must be declared nullable);
        the stored filler underneath is the dtype's zero value.
        """
        names = [c.name for c in schema.columns]
        if rows:
            transposed = list(zip(*rows))
        else:
            transposed = [[] for _ in names]
        columns = {}
        masks = {}
        for col_def, values in zip(schema.columns, transposed):
            values = list(values)
            dtype = col_def.dtype.numpy_dtype
            if any(v is None for v in values):
                mask = np.fromiter((v is None for v in values), dtype=bool,
                                   count=len(values))
                fill = None if dtype.kind == "O" else dtype.type()
                values = [fill if v is None else v for v in values]
                masks[col_def.name] = mask
            columns[col_def.name] = np.asarray(values, dtype=dtype)
        return cls(schema, columns, null_masks=masks)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "Table(%s, rows=%d, cols=%d)" % (self.name, self._num_rows,
                                                len(self.column_names))
