"""Column metadata and column data containers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

from .types import DataType

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..executor.shm import ArrayRef, ShmArena


@dataclass(frozen=True)
class ColumnDef:
    """Schema-level definition of a single table column.

    Attributes:
        name: Column name, unique within its table.
        dtype: Logical data type.
        nullable: Whether NULLs may appear (TPC-H columns are non-null).
    """

    name: str
    dtype: DataType
    nullable: bool = False

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return "%s %s" % (self.name, self.dtype)


@dataclass
class ColumnData:
    """A single materialised column: definition, values and null mask.

    ``null_mask`` marks NULL rows with ``True``; ``None`` means all rows are
    valid and is the fast path the executor preserves end-to-end.  An
    all-``False`` mask is normalised to ``None`` at construction so the fast
    path stays sticky.  ``ColumnDef.nullable`` is enforced: a mask with any
    NULL on a non-nullable column is rejected.
    """

    definition: ColumnDef
    values: np.ndarray
    null_mask: Optional[np.ndarray] = field(default=None)

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values)
        if self.null_mask is not None:
            self.null_mask = np.asarray(self.null_mask, dtype=bool)
            if self.null_mask.shape != self.values.shape:
                raise ValueError("null mask shape does not match values")
            if not self.null_mask.any():
                self.null_mask = None
            elif not self.definition.nullable:
                raise ValueError(
                    "column %r is declared NOT NULL but its mask marks %d "
                    "null row(s)" % (self.definition.name,
                                     int(self.null_mask.sum())))

    def __len__(self) -> int:
        return int(self.values.shape[0])

    def take(self, indices: np.ndarray) -> "ColumnData":
        """Return a new column containing only the rows at ``indices``."""
        mask = None if self.null_mask is None else self.null_mask[indices]
        return ColumnData(self.definition, self.values[indices], mask)

    def filter(self, mask: np.ndarray) -> "ColumnData":
        """Return a new column with rows selected by a boolean ``mask``."""
        nulls = None if self.null_mask is None else self.null_mask[mask]
        return ColumnData(self.definition, self.values[mask], nulls)

    def export(self, arena: "ShmArena",
               ) -> Tuple["ArrayRef", Optional["ArrayRef"]]:
        """``(values_ref, mask_ref)`` for shipping this column to a worker.

        The arena copies each distinct array into shared memory exactly once
        (exports are memoized per array object), so a column shipped to many
        process-backend morsels pays for one copy; workers attach read-only
        zero-copy views (see :mod:`repro.executor.shm`).
        """
        return arena.export(self.values), arena.export_optional(self.null_mask)
