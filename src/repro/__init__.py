"""repro: reproduction of "Including Bloom Filters in Bottom-up Optimization".

The package is organised as:

* :mod:`repro.api` — the embeddable session API (``Database`` / ``Session``)
  with the shared plan and enumeration-sequence caches;
* :mod:`repro.errors` — the typed error hierarchy (``ReproError``);
* :mod:`repro.faults` — deterministic fault injection (``FaultPlan``) for
  chaos-testing the executor and serving tiers;
* :mod:`repro.bloom` — Bloom filter primitives;
* :mod:`repro.storage` — columnar tables, catalog and statistics;
* :mod:`repro.sql` — SQL front end for the supported subset;
* :mod:`repro.core` — the optimizer (plain CBO, BF-Post, BF-CBO, naïve);
* :mod:`repro.executor` — vectorised execution engine with runtime metrics;
* :mod:`repro.serving` — async multi-tenant serving tier (admission control,
  deadlines, shared result cache);
* :mod:`repro.tpch` — TPC-H data generator and workload;
* :mod:`repro.experiments` — harnesses reproducing every table and figure.

The facade types are re-exported at top level: ``repro.Database`` is the
single entry point most embedders need.
"""

from .api import (
    CacheStats,
    CancelToken,
    Database,
    PreparedQuery,
    QueryResult,
    Session,
)
from .errors import (
    AdmissionError,
    ExecutionError,
    GovernorExhaustedError,
    PlanningError,
    QueryCancelledError,
    ReproError,
    ResourceExhaustedError,
    SessionClosedError,
    ShmPressureError,
    TransientError,
    WorkerCrashError,
)
from .faults import FaultPlan, FaultSpec
from .sql.errors import SqlError

__version__ = "1.4.0"

__all__ = [
    "AdmissionError",
    "CacheStats",
    "CancelToken",
    "Database",
    "ExecutionError",
    "FaultPlan",
    "FaultSpec",
    "GovernorExhaustedError",
    "PlanningError",
    "PreparedQuery",
    "QueryCancelledError",
    "QueryResult",
    "ReproError",
    "ResourceExhaustedError",
    "Session",
    "SessionClosedError",
    "ShmPressureError",
    "SqlError",
    "TransientError",
    "WorkerCrashError",
    "__version__",
]
