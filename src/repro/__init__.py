"""repro: reproduction of "Including Bloom Filters in Bottom-up Optimization".

The package is organised as:

* :mod:`repro.api` — the embeddable session API (``Database`` / ``Session``)
  with the shared plan and enumeration-sequence caches;
* :mod:`repro.errors` — the typed error hierarchy (``ReproError``);
* :mod:`repro.bloom` — Bloom filter primitives;
* :mod:`repro.storage` — columnar tables, catalog and statistics;
* :mod:`repro.sql` — SQL front end for the supported subset;
* :mod:`repro.core` — the optimizer (plain CBO, BF-Post, BF-CBO, naïve);
* :mod:`repro.executor` — vectorised execution engine with runtime metrics;
* :mod:`repro.tpch` — TPC-H data generator and workload;
* :mod:`repro.experiments` — harnesses reproducing every table and figure.

The facade types are re-exported at top level: ``repro.Database`` is the
single entry point most embedders need.
"""

from .api import (
    CacheStats,
    Database,
    PreparedQuery,
    QueryResult,
    Session,
)
from .errors import ExecutionError, PlanningError, ReproError
from .sql.errors import SqlError

__version__ = "1.1.0"

__all__ = [
    "CacheStats",
    "Database",
    "ExecutionError",
    "PlanningError",
    "PreparedQuery",
    "QueryResult",
    "ReproError",
    "Session",
    "SqlError",
    "__version__",
]
