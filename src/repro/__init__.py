"""repro: reproduction of "Including Bloom Filters in Bottom-up Optimization".

The package is organised as:

* :mod:`repro.bloom` — Bloom filter primitives;
* :mod:`repro.storage` — columnar tables, catalog and statistics;
* :mod:`repro.sql` — SQL front end for the supported subset;
* :mod:`repro.core` — the optimizer (plain CBO, BF-Post, BF-CBO, naïve);
* :mod:`repro.executor` — vectorised execution engine with runtime metrics;
* :mod:`repro.tpch` — TPC-H data generator and workload;
* :mod:`repro.experiments` — harnesses reproducing every table and figure.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
