"""The unified error surface of the reproduction.

Every failure the library raises on behalf of a user query descends from
:class:`ReproError`, split by pipeline stage:

* :class:`~repro.sql.errors.SqlError` — lexing, parsing or binding failed
  (semantic-analysis failures are typed, catchable errors rather than ad-hoc
  ``ValueError``\\ s);
* :class:`PlanningError` — the optimizer could not produce a plan;
* :class:`ExecutionError` — the executor failed while running a plan (for
  example because the catalog is statistics-only and holds no data);
* :class:`QueryCancelledError` (an ``ExecutionError``) — the request was
  cancelled or its deadline expired mid-execution;
* :class:`TransientError` (an ``ExecutionError``) — the *retryable* branch:
  the query itself is fine but the machinery under it hiccuped (a worker
  process died, :class:`WorkerCrashError`; shared memory ran out,
  :class:`ShmPressureError`; the process-wide memory pool was contended,
  :class:`GovernorExhaustedError`; an injected fault fired).  Re-running
  the same query may succeed, and the serving tier's
  :class:`~repro.serving.retry.RetryPolicy` retries exactly this branch —
  never ``SqlError``/``PlanningError``/cancellation;
* :class:`ResourceExhaustedError` (an ``ExecutionError``) — the runaway
  query hit one of its own per-query limits (``max_memory_bytes`` /
  ``max_spill_bytes`` / ``max_rows``).  Permanent by default: re-running
  the same query hits the same limit.  The one retryable special case is
  :class:`GovernorExhaustedError`, which is *also* a ``TransientError``
  because the contended resource is shared and may free up;
* :class:`AdmissionError` / :class:`SessionClosedError` — the serving tier
  shed the request before execution (queue overflow / closed facade).

``except ReproError`` therefore catches everything a bad query can cause,
while programming errors (wrong argument types, broken invariants) keep
raising their natural exception types.  :class:`~repro.sql.errors.SqlError`
additionally remains a ``ValueError`` subclass for backwards compatibility
with pre-hierarchy callers.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Type


class ReproError(Exception):
    """Base class for all errors raised by the repro query pipeline."""


class PlanningError(ReproError):
    """Raised when the optimizer cannot produce a plan for a query."""


class PlanContractError(PlanningError):
    """Raised when a produced plan violates an executor contract.

    The plan-contract verifier (:mod:`repro.analysis.contracts`) walks bound
    plan trees at plan time and checks the invariants the executor silently
    assumes — column resolution, join-key dtype compatibility, null-mask
    closure, hidden-sort-key accounting, the Bloom publication barrier and
    cardinality sanity.  ``violations`` carries every
    :class:`~repro.analysis.contracts.ContractViolation` found (each naming
    the offending contract and node path); the message reports the first.
    """

    def __init__(self, message: str, violations: "tuple" = ()) -> None:
        super().__init__(message)
        #: All violations found in the plan, first one first.
        self.violations = tuple(violations)


class ExecutionError(ReproError):
    """Raised when executing a plan fails.

    The original executor exception, if any, is preserved as ``__cause__``.
    """


class QueryCancelledError(ExecutionError):
    """Raised when a query is cancelled (or its deadline expires) mid-flight.

    The executor checks the request's
    :class:`~repro.executor.cancel.CancelToken` at every operator boundary
    and before every morsel, so an abandoned query stops within one morsel
    of work.  ``reason`` distinguishes an explicit :meth:`cancel
    <repro.executor.cancel.CancelToken.cancel>` from a deadline expiry.
    """

    def __init__(self, message: str, reason: str = "cancelled") -> None:
        super().__init__(message)
        #: Why the query stopped: ``"cancelled"``, ``"deadline exceeded"``,
        #: or a caller-supplied reason string.
        self.reason = reason


class TransientError(ExecutionError):
    """A retryable execution failure: the environment, not the query.

    The contract that makes retries safe: a ``TransientError`` is only
    raised when *no* query state has been externalized — the executor fails
    the whole query, the serving tier may transparently re-run it, and the
    re-run is indistinguishable from a first run.  Semantic failures
    (``SqlError``, :class:`PlanningError`, data errors) and
    :class:`QueryCancelledError` are deliberately **not** transient and are
    never retried.
    """


class WorkerCrashError(TransientError):
    """A process-pool worker died and supervision could not recover.

    The executor's windowed dispatch already absorbs one worker death per
    dispatch — it rebuilds the pool and re-runs only the unfinished morsel
    spans (:meth:`repro.executor.backend.MorselPools.process_map`).  This
    error surfaces only when the rebuilt pool breaks *again*, at which point
    the circuit breaker counts the failure toward tripping the process
    backend over to threads.
    """


class ShmPressureError(TransientError):
    """Shared-memory transport failed after a segment was published.

    Allocation-time pressure never raises this — the arena degrades to
    in-band pickled arguments (:mod:`repro.executor.shm`).  It surfaces only
    when a worker cannot attach a segment the parent believes is live (for
    example the segment vanished under ``/dev/shm`` pressure), which is
    transient: a retry re-exports the payload.
    """


class ResourceExhaustedError(ExecutionError):
    """A query exceeded one of its per-query resource limits.

    Raised by the memory governor's runaway-query watchdog when a query's
    ``max_memory_bytes`` cannot be respected even by spilling, its spill
    volume exceeds ``max_spill_bytes``, or an operator materializes more
    than ``max_rows`` rows.  Deliberately **not** transient: re-running the
    same query against the same data hits the same limit, so retrying is
    wasted work.  ``resource`` names the exhausted dimension
    (``"memory"`` / ``"spill"`` / ``"rows"``).
    """

    def __init__(self, message: str, resource: str = "memory") -> None:
        super().__init__(message)
        #: The exhausted dimension: ``"memory"``, ``"spill"`` or ``"rows"``.
        self.resource = resource


class GovernorExhaustedError(TransientError, ResourceExhaustedError):
    """The process-wide memory pool is contended, not the query oversized.

    Raised when a reservation fails because *other* queries hold the
    :class:`~repro.executor.memory.MemoryGovernor` pool — the query's own
    limits are fine and the working set fits the pool in isolation.  This
    is the one :class:`ResourceExhaustedError` that is also a
    :class:`TransientError`: once concurrent queries release their grants a
    retry can plausibly succeed, so the serving tier's
    :class:`~repro.serving.retry.RetryPolicy` composes with it.
    """

    def __init__(self, message: str) -> None:
        super().__init__(message, resource="memory")


class AdmissionError(ReproError):
    """Raised when the serving tier refuses to admit a request.

    The admission queue (:class:`repro.serving.AdmissionQueue`) sheds load
    instead of queueing without bound: a full queue, an over-cap tenant
    backlog, or a closed queue all surface as this typed error so callers
    can back off and retry.
    """


class SessionClosedError(ReproError):
    """Raised when a query is issued against a closed session or database.

    ``Session.close()`` / ``Database.close()`` shut the executor and serving
    thread pools down deterministically; any execute/plan/connect call after
    that raises this error rather than resurrecting a pool.
    """


#: Exception types treated as data-dependent pipeline failures: these (and
#: only these) are converted into the typed hierarchy by :func:`raise_as`.
#: Everything else — TypeError, AttributeError, broken invariants — is a
#: programming error and keeps its natural type.
DATA_ERROR_TYPES = (ValueError, LookupError, ArithmeticError)


@contextlib.contextmanager
def raise_as(error_cls: Type[ReproError], context: str) -> Iterator[None]:
    """Convert data-dependent failures inside the block into ``error_cls``.

    Existing :class:`ReproError`\\ s pass through untouched; the original
    exception is preserved as ``__cause__``.  The single conversion point for
    both the planning and execution stages, so they can never drift on which
    exception types count as query failures.
    """
    try:
        yield
    except ReproError:
        raise
    except DATA_ERROR_TYPES as exc:
        raise error_cls("%s: %s" % (context, exc)) from exc


__all__ = ["AdmissionError", "DATA_ERROR_TYPES", "ExecutionError",
           "GovernorExhaustedError", "PlanContractError", "PlanningError",
           "QueryCancelledError", "ReproError", "ResourceExhaustedError",
           "SessionClosedError", "ShmPressureError", "TransientError",
           "WorkerCrashError", "raise_as"]
