"""Regenerate the golden TPC-H plan file used by tests/test_plan_stability.py.

Run from the repository root:

    PYTHONPATH=src python scripts/dump_plan_golden.py > tests/golden/tpch_plans.txt

The golden file pins the exact plans (join order, methods, Bloom filter specs,
estimated rows and costs) chosen at the paper's SF100 statistics for every
analysed TPC-H query under all optimizer modes.  Any enumeration refactor must
keep these byte-identical.
"""

from __future__ import annotations

import sys

from repro.core import Optimizer, OptimizerMode, explain, join_order_summary
from repro.core.heuristics import BfCboSettings
from repro.tpch import TpchWorkload


def render_workload_plans(out=sys.stdout) -> None:
    workload = TpchWorkload.statistics_only(scale_factor=100.0)
    optimizer = Optimizer(workload.catalog)
    configurations = [
        ("no-bf", OptimizerMode.NO_BF, None),
        ("bf-post", OptimizerMode.BF_POST, None),
        ("bf-cbo", OptimizerMode.BF_CBO, BfCboSettings.paper_defaults()),
        ("bf-cbo-h7", OptimizerMode.BF_CBO, BfCboSettings.with_heuristic7()),
    ]
    for number in workload.query_numbers:
        query = workload.query(number)
        for label, mode, settings in configurations:
            result = optimizer.optimize(query, mode, settings)
            print("==== %s %s ====" % (query.name, label), file=out)
            print("cost=%.6g rows=%.6g blooms=%d"
                  % (result.estimated_cost, result.plan.rows,
                     result.num_bloom_filters), file=out)
            for entry in join_order_summary(result.join_plan):
                print("join: %s" % entry, file=out)
            print(explain(result.plan), file=out)
            print(file=out)


if __name__ == "__main__":
    render_workload_plans()
