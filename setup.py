"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists so
that fully offline environments (no ``wheel`` package available) can still do a
legacy editable install via ``pip install -e . --no-use-pep517
--no-build-isolation`` or ``python setup.py develop``.
"""

from setuptools import setup

setup()
