"""Shared fixtures for the benchmark harness.

Each benchmark module regenerates one table or figure of the paper (see
DESIGN.md's experiment index).  The benchmarks run each experiment once per
session (``benchmark.pedantic`` with a single round) because the interesting
output is the reproduced table itself — printed to stdout and attached to the
benchmark's ``extra_info`` — rather than microsecond-level timing stability.
"""

from __future__ import annotations

import pytest

from repro.tpch import TpchWorkload

#: Scale factor for executed benchmarks (Table 2/3, Figure 5, MAE, case studies).
BENCH_SCALE_FACTOR = 0.01

#: Scale factor for planner-only benchmarks (paper statistics, no data).
PAPER_SCALE_FACTOR = 100.0


@pytest.fixture(scope="session")
def bench_workload() -> TpchWorkload:
    """Materialised TPC-H workload shared by all executed benchmarks."""
    return TpchWorkload.generate(scale_factor=BENCH_SCALE_FACTOR)


@pytest.fixture(scope="session")
def paper_stats_workload() -> TpchWorkload:
    """Statistics-only workload at the paper's SF100 cardinalities."""
    return TpchWorkload.statistics_only(scale_factor=PAPER_SCALE_FACTOR)
