"""Benchmark E3: Figure 1 — the TPC-H Q12 join-input reversal case study.

The paper's Figure 1 shows that BF-CBO reverses the join inputs of Q12 so a
Bloom filter built on the filtered ``lineitem`` prunes the ``orders`` scan,
cutting latency by 49.2%.  The benchmark executes Q12 under BF-Post and BF-CBO
on generated data, prints both annotated plans (estimated and observed rows)
and asserts that BF-CBO applies at least as many Bloom filters and is at least
as fast.
"""

from __future__ import annotations

from repro.experiments import run_q12_case_study


def test_figure1_q12_case_study(benchmark, bench_workload):
    result = benchmark.pedantic(
        lambda: run_q12_case_study(workload=bench_workload),
        rounds=1, iterations=1)

    print()
    print(result.to_text())

    benchmark.extra_info["bf_post_filters"] = result.bf_post_filters
    benchmark.extra_info["bf_cbo_filters"] = result.bf_cbo_filters
    benchmark.extra_info["latency_improvement_pct"] = result.latency_improvement
    benchmark.extra_info["plan_changed"] = result.plan_changed

    assert result.bf_cbo_filters >= result.bf_post_filters
    assert result.bf_cbo.simulated_latency <= \
        result.bf_post.simulated_latency * 1.02
