"""Benchmark E1: Table 2 and Figure 5 — per-query TPC-H latencies.

Regenerates the paper's main result: for every analysed TPC-H query, the
query latency of BF-Post and BF-CBO normalised to the No-BF run, the per-query
percentage improvement of BF-CBO over BF-Post, and the planner latencies.
The absolute numbers differ from the paper (simulated work-unit latency on a
small scale factor instead of wall-clock on SF100), but the expected shape is
asserted: Bloom filters help overall, and BF-CBO does not lose to BF-Post in
aggregate.
"""

from __future__ import annotations

from repro.experiments import run_tpch_suite


def test_table2_figure5_tpch_latencies(benchmark, bench_workload):
    result = benchmark.pedantic(
        lambda: run_tpch_suite(workload=bench_workload),
        rounds=1, iterations=1)

    print()
    print(result.to_text())
    print("Overall reduction vs No-BF: BF-Post %.1f%%, BF-CBO %.1f%% "
          "(paper: 28.8%% / 52.2%%)"
          % (result.overall_bf_post_reduction, result.overall_bf_cbo_reduction))
    print("BF-CBO improvement over BF-Post: %.1f%% (paper: 32.8%%)"
          % result.overall_improvement_over_post)

    series = result.figure5_series()
    benchmark.extra_info["bf_post_reduction_pct"] = result.overall_bf_post_reduction
    benchmark.extra_info["bf_cbo_reduction_pct"] = result.overall_bf_cbo_reduction
    benchmark.extra_info["bf_cbo_vs_bf_post_pct"] = result.overall_improvement_over_post
    benchmark.extra_info["figure5_bf_post"] = series["bf_post"]
    benchmark.extra_info["figure5_bf_cbo"] = series["bf_cbo"]

    # Shape assertions: Bloom filters help, BF-CBO at least matches BF-Post.
    assert result.overall_bf_post_reduction > 0
    assert result.total_bf_cbo <= result.total_bf_post * 1.02
    assert len(result.rows) == len(bench_workload.query_numbers)
