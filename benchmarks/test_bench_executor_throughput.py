"""Benchmark gates for the partition-parallel execution subsystem.

Two hard speedup gates guard the PR-5 executor work (docs/executor.md):

* **Kernel gate** — the factorized hash join kernel
  (:class:`~repro.executor.keys.CompositeKeyIndex`: factorize the build side
  once, ``searchsorted`` over distinct keys per probe) must beat the legacy
  sort/search kernel (re-``argsort`` the full build side per probe) by >= 2x
  on a skewed 1M-row join probed morsel-wise, exactly as the morsel executor
  drives it through the per-batch kernel memo.
* **Serving gate** — ``Database.execute_many`` on a mixed TPC-H workload with
  repeated queries (serving traffic) must beat single-session sequential
  execution by >= 2x, via request collapsing plus concurrent execution in
  per-query filter scopes.

A third check asserts the deterministic simulated-latency model (work units,
Bloom probe counts) is *unchanged* by the parallel path — parallelism is a
wall-clock optimisation only.

Results are written to ``BENCH_executor_throughput.json`` (uploaded as a CI
artifact, same pattern as ``BENCH_planner_latency.json``) so the executor's
perf trajectory is machine-readable PR over PR.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.api import Database
from repro.executor import sort_search_join_indices
from repro.executor.keys import CompositeKeyIndex

#: Machine-readable executor-throughput results (written into the working
#: directory, i.e. the repo root under ``make smoke``).
THROUGHPUT_JSON = Path("BENCH_executor_throughput.json")

#: Build-side rows of the kernel microbenchmark.
KERNEL_BUILD_ROWS = 1_000_000
#: Probe morsels driven against the single factorized build side.
KERNEL_PROBE_MORSELS = 8

#: The mixed serving workload: a TPC-H query cycle with every query repeated,
#: the way real dashboards and APIs repeat a small set of hot queries.
SERVING_QUERY_CYCLE = [3, 5, 10, 12, 18, 19]
SERVING_REPEATS = 6
SERVING_WORKERS = 8


def _write_payload(section: str, payload: dict) -> None:
    """Merge one benchmark section into the shared JSON artifact."""
    data = {}
    if THROUGHPUT_JSON.exists():
        data = json.loads(THROUGHPUT_JSON.read_text())
    data.setdefault("benchmark", "executor_throughput")
    data[section] = payload
    THROUGHPUT_JSON.write_text(json.dumps(data, indent=2) + "\n")
    print("wrote %s [%s]" % (THROUGHPUT_JSON.resolve(), section))


def test_factorized_kernel_speedup_gate(benchmark):
    """Factorized join kernel >= 2x over sort/search on a skewed 1M-row join.

    The workload mirrors morsel execution: one build side, probed in
    :data:`KERNEL_PROBE_MORSELS` chunks.  The legacy kernel re-sorts the full
    1M-row build side for every probe; the factorized kernel builds its index
    once (as the per-batch memo does) and every probe is a ``searchsorted``
    over the ~200k distinct keys.  The key distribution is cubed-uniform, so
    a few hot keys carry most of the rows — the regime the paper's join
    workloads live in.
    """
    rng = np.random.default_rng(42)
    build = (rng.random(KERNEL_BUILD_ROWS) ** 3 * 200_000).astype(np.int64)
    probe = rng.integers(0, 400_000, KERNEL_BUILD_ROWS).astype(np.int64)
    morsels = np.array_split(probe, KERNEL_PROBE_MORSELS)

    def run_legacy():
        pairs = 0
        for morsel in morsels:
            probe_idx, _, _ = sort_search_join_indices(morsel, build)
            pairs += probe_idx.size
        return pairs

    def run_factorized():
        index = CompositeKeyIndex([build])
        pairs = 0
        for morsel in morsels:
            probe_idx, _, _ = index.probe([morsel])
            pairs += probe_idx.size
        return pairs

    def measure():
        started = time.perf_counter()
        legacy_pairs = run_legacy()
        legacy_s = time.perf_counter() - started
        started = time.perf_counter()
        fact_pairs = run_factorized()
        fact_s = time.perf_counter() - started
        return legacy_pairs, fact_pairs, legacy_s, fact_s

    legacy_pairs, fact_pairs, legacy_s, fact_s = benchmark.pedantic(
        measure, rounds=1, iterations=1)
    speedup = legacy_s / fact_s

    print()
    print("sort/search kernel:  %7.1f ms (%d pairs)" % (legacy_s * 1e3,
                                                        legacy_pairs))
    print("factorized kernel:   %7.1f ms (%d pairs)" % (fact_s * 1e3,
                                                        fact_pairs))
    print("speedup:             %7.2fx (gate: >= 2x)" % speedup)

    benchmark.extra_info["kernel_speedup"] = speedup
    _write_payload("kernel", {
        "build_rows": KERNEL_BUILD_ROWS,
        "probe_morsels": KERNEL_PROBE_MORSELS,
        "matching_pairs": int(legacy_pairs),
        "sort_search_ms": legacy_s * 1e3,
        "factorized_ms": fact_s * 1e3,
        "speedup": speedup,
        "gate": 2.0,
    })

    # Both kernels must agree before the speedup means anything.
    assert fact_pairs == legacy_pairs
    assert speedup >= 2.0


def test_execute_many_throughput_gate(benchmark, bench_workload):
    """``execute_many`` >= 2x sequential throughput on mixed serving traffic.

    The sequential baseline is a warm single session (plan cache hot, every
    query still executed one by one).  The batched path collapses the
    repeated requests onto one execution each and runs the distinct queries
    concurrently; both produce identical results and identical simulated
    metrics.
    """
    database = Database(bench_workload.catalog)
    database.workload = bench_workload
    numbers = SERVING_QUERY_CYCLE * SERVING_REPEATS
    queries = [bench_workload.query(number) for number in numbers]

    warm = database.connect(history_limit=0)
    for number in set(numbers):
        warm.execute(bench_workload.query(number))

    def measure():
        session = database.connect(history_limit=0)
        started = time.perf_counter()
        sequential = [session.execute(query) for query in queries]
        sequential_s = time.perf_counter() - started
        started = time.perf_counter()
        batched = database.execute_many(queries, workers=SERVING_WORKERS)
        batched_s = time.perf_counter() - started
        return sequential, batched, sequential_s, batched_s

    sequential, batched, sequential_s, batched_s = benchmark.pedantic(
        measure, rounds=1, iterations=1)
    speedup = sequential_s / batched_s

    print()
    print("workload: %d queries (%d distinct), %d workers"
          % (len(queries), len(set(numbers)), SERVING_WORKERS))
    print("sequential session:  %7.1f ms" % (sequential_s * 1e3))
    print("execute_many:        %7.1f ms" % (batched_s * 1e3))
    print("speedup:             %7.2fx (gate: >= 2x)" % speedup)

    benchmark.extra_info["execute_many_speedup"] = speedup
    _write_payload("serving", {
        "queries": len(queries),
        "distinct_queries": len(set(numbers)),
        "workers": SERVING_WORKERS,
        "sequential_ms": sequential_s * 1e3,
        "execute_many_ms": batched_s * 1e3,
        "speedup": speedup,
        "gate": 2.0,
    })

    # Identical rows and identical deterministic metrics, query by query.
    for reference, result in zip(sequential, batched):
        assert result.execution.metrics.total_work_units == \
            reference.execution.metrics.total_work_units
        assert result.execution.metrics.bloom_probes == \
            reference.execution.metrics.bloom_probes
        for key in reference.execution.batch.keys:
            assert np.array_equal(reference.execution.batch.column(key),
                                  result.execution.batch.column(key))
    assert speedup >= 2.0


#: Worker counts of the per-operator scaling curve.
SCALING_WORKERS = (1, 2, 4, 8)
#: Morsel size of the scaling model: small enough that every operator's
#: parallel phase splits into several morsels at the benchmark scale factor.
SCALING_MORSEL = 512
#: Plan-node kinds reported as individual scaling curves.
SCALING_KINDS = ("JoinNode", "AggregateNode", "SortNode")


def test_operator_scaling_curve_gate(benchmark, bench_workload):
    """Morsel execution >= 2x end-to-end at 8 workers on join-heavy traffic.

    The wall-clock of this container is a single core, so the gate rides the
    deterministic scaling model instead
    (:meth:`~repro.executor.metrics.ExecutionMetrics.simulated_latency_at`):
    every operator records the morsel-parallelisable share of its work and
    the row count it spreads over, both derived from observed row counts
    only, so the curve is identical no matter which backend executed the
    plan.  ``workers=1`` reproduces ``simulated_latency`` exactly; the gate
    demands >= 2x at 8 workers over the join-heavy serving cycle, and the
    per-operator curves (join / aggregation / sort) land in the JSON
    artifact PR over PR.  Wall-clock for the serial and 8-worker thread
    runs is reported for reference, ungated.
    """
    database = Database(bench_workload.catalog)
    database.workload = bench_workload
    queries = [bench_workload.query(number) for number in SERVING_QUERY_CYCLE]

    def measure():
        serial = database.connect(history_limit=0)
        started = time.perf_counter()
        results = [serial.execute(query) for query in queries]
        serial_s = time.perf_counter() - started
        threaded = database.connect(history_limit=0, executor_workers=8,
                                    morsel_size=SCALING_MORSEL)
        started = time.perf_counter()
        parallel_results = [threaded.execute(query) for query in queries]
        threaded_s = time.perf_counter() - started
        return results, parallel_results, serial_s, threaded_s

    results, parallel_results, serial_s, threaded_s = benchmark.pedantic(
        measure, rounds=1, iterations=1)

    # The scaling model only means anything over bit-identical executions.
    for want, got in zip(results, parallel_results):
        assert got.execution.metrics.total_work_units == \
            want.execution.metrics.total_work_units
        for key in want.execution.batch.keys:
            assert np.array_equal(want.execution.batch.column(key),
                                  got.execution.batch.column(key))

    metrics = [result.execution.metrics for result in results]
    end_to_end = {
        workers: sum(m.simulated_latency_at(workers, SCALING_MORSEL)
                     for m in metrics)
        for workers in SCALING_WORKERS}
    curves = {
        kind: {workers: sum(m.simulated_latency_at(workers, SCALING_MORSEL,
                                                   kind=kind)
                            for m in metrics)
               for workers in SCALING_WORKERS}
        for kind in SCALING_KINDS}
    assert end_to_end[1] == sum(m.simulated_latency for m in metrics)
    speedup = end_to_end[1] / end_to_end[8]

    print()
    print("scaling cycle: %d queries, morsel=%d"
          % (len(queries), SCALING_MORSEL))
    for workers in SCALING_WORKERS:
        print("  %d workers: %10.1f units (%5.2fx)"
              % (workers, end_to_end[workers],
                 end_to_end[1] / end_to_end[workers]))
    for kind, curve in curves.items():
        print("  %-14s %5.2fx at 8 workers"
              % (kind + ":", curve[1] / curve[8] if curve[8] else 1.0))
    print("wall-clock (reference): serial %.1f ms, 8-thread %.1f ms"
          % (serial_s * 1e3, threaded_s * 1e3))
    print("simulated speedup at 8 workers: %.2fx (gate: >= 2x)" % speedup)

    benchmark.extra_info["scaling_speedup_8"] = speedup
    _write_payload("scaling", {
        "queries": ["Q%d" % number for number in SERVING_QUERY_CYCLE],
        "morsel_size": SCALING_MORSEL,
        "workers": list(SCALING_WORKERS),
        "end_to_end_units": {str(w): end_to_end[w] for w in SCALING_WORKERS},
        "operator_curves": {
            kind: {str(w): curve[w] for w in SCALING_WORKERS}
            for kind, curve in curves.items()},
        "serial_wall_ms": serial_s * 1e3,
        "threaded8_wall_ms": threaded_s * 1e3,
        "speedup_at_8": speedup,
        "gate": 2.0,
    })

    # Every operator family must actually scale (strictly below serial at 8
    # workers), and the whole workload must clear the 2x gate.
    for kind, curve in curves.items():
        assert curve[8] < curve[1], kind
    assert speedup >= 2.0


def test_parallel_path_keeps_simulated_latency(benchmark, bench_workload):
    """Morsel execution must not move a single simulated work unit.

    Runs the serving cycle serial and with ``executor_workers=4`` at a small
    morsel size (so every scan really splits) and asserts work units, Bloom
    probes and row counters are identical — wall-clock parallelism only.
    """
    database = Database(bench_workload.catalog)
    database.workload = bench_workload

    def measure():
        serial = database.connect(history_limit=0)
        parallel = database.connect(history_limit=0, executor_workers=4,
                                    morsel_size=4_096)
        deltas = []
        for number in SERVING_QUERY_CYCLE:
            query = bench_workload.query(number)
            want = serial.execute(query).execution.metrics
            got = parallel.execute(query).execution.metrics
            deltas.append({
                "query": "Q%d" % number,
                "work_units": [want.total_work_units, got.total_work_units],
                "bloom_probes": [want.bloom_probes, got.bloom_probes],
                "rows_scanned": [want.rows_scanned, got.rows_scanned],
            })
        return deltas

    deltas = benchmark.pedantic(measure, rounds=1, iterations=1)
    _write_payload("parallel_metrics", {"queries": deltas})
    for delta in deltas:
        for metric, values in delta.items():
            if metric == "query":
                continue
            want, got = values
            assert want == got, (delta["query"], metric)
