"""Benchmark: the Database plan cache under repeated same-shape traffic.

The session API's headline claim is that repeated workloads stop paying for
planning: an identical query hits the plan cache (no optimizer invocation at
all), and a same-shape query with different predicates — a plan-cache miss —
still reuses the cached canonical DPccp mask-triple sequence instead of
re-walking the join graph.  This benchmark drives TPC-H Q5 (a six-relation
join, the kind of query whose planning time the paper's Table 2 reports in
milliseconds) through a session three times and asserts both cache levels
behave as advertised.
"""

from __future__ import annotations

from repro.api import Database, OptimizerMode
from repro.tpch import query_text


def test_plan_cache_hit_lowers_planning_time(benchmark, bench_workload):
    db = Database(bench_workload.catalog,
                  scale_factor=bench_workload.scale_factor)
    session = db.connect()
    query = bench_workload.query(5)

    cold = benchmark.pedantic(
        lambda: session.execute(query, mode=OptimizerMode.BF_CBO),
        rounds=1, iterations=1)
    warm = session.execute(query, mode=OptimizerMode.BF_CBO)

    print()
    print("cold planning: %.2f ms (cache miss), warm planning: %.3f ms "
          "(cache %s)" % (cold.planning_time_ms, warm.planning_time_ms,
                          "hit" if warm.from_plan_cache else "miss"))

    benchmark.extra_info["cold_planning_ms"] = cold.planning_time_ms
    benchmark.extra_info["warm_planning_ms"] = warm.planning_time_ms

    assert not cold.from_plan_cache
    assert warm.from_plan_cache
    # The warm run returns the cached optimization without re-planning ...
    assert warm.optimization is cold.optimization
    # ... and fetching it is measurably cheaper than the cold optimization.
    assert warm.planning_time_ms < cold.planning_time_ms * 0.5
    # Identical results either way.
    assert warm.num_rows == cold.num_rows

    stats = db.cache_stats()
    assert stats.plan_hits == 1


def test_same_shape_query_reuses_enumeration_sequence(bench_workload):
    db = Database(bench_workload.catalog,
                  scale_factor=bench_workload.scale_factor)
    session = db.connect()

    session.execute(bench_workload.query(5), mode=OptimizerMode.BF_CBO)
    after_cold = db.cache_stats()

    # Same join-graph shape, different predicate constant: the plan cache
    # misses but the DPccp walk is skipped entirely.
    variant = query_text(5).replace("'ASIA'", "'EUROPE'")
    result = session.execute(variant, mode=OptimizerMode.BF_CBO, name="q5-europe")

    stats = db.cache_stats()
    print()
    print("plan cache: %d hits / %d lookups; sequence cache: %d hits / "
          "%d lookups over %d entries"
          % (stats.plan_hits, stats.plan_lookups, stats.sequence_hits,
             stats.sequence_lookups, stats.sequence_entries))

    assert not result.from_plan_cache
    assert stats.sequence_hits > after_cold.sequence_hits
    # One shape, one entry — the variant added nothing new.
    assert stats.sequence_entries == after_cold.sequence_entries
