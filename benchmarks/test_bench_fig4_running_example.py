"""Benchmark E4: Figure 4 and Examples 3.1–3.4 — the Section 3 running example.

Regenerates the paper's worked example: candidate marking, Δ collection,
Bloom filter sub-plan costing, and the final BF-Post vs BF-CBO plans at the
paper's synthetic cardinalities (t1 = 600M, t2 ≈ 807K, t3 = 1M).  Asserts the
structural outcomes the paper derives: the expected candidates and Δ lists,
and a BF-CBO plan that applies a Bloom filter to t1 built from t2 at no higher
estimated cost than BF-Post's plan.
"""

from __future__ import annotations

from repro.experiments import run_running_example


def test_figure4_running_example(benchmark):
    result = benchmark.pedantic(run_running_example, rounds=1, iterations=1)

    print()
    print(result.to_text())

    benchmark.extra_info["bf_post_cost"] = result.bf_post.estimated_cost
    benchmark.extra_info["bf_cbo_cost"] = result.bf_cbo.estimated_cost
    benchmark.extra_info["bf_cbo_filters"] = result.bf_cbo.num_bloom_filters

    # Example 3.1: candidates on t1 and t3 only (Heuristic 1).
    assert set(result.candidates) == {"t1", "t3"}
    # Example 3.2: Δ(t1) contains both {t2} and {t2, t3}.
    t1_deltas = {frozenset(d) for d in result.deltas["t1"]}
    assert frozenset({"t2"}) in t1_deltas
    assert frozenset({"t2", "t3"}) in t1_deltas
    # Figure 4: the BF-CBO plan uses at least one Bloom filter and its
    # estimated cost is no worse than the post-processing plan.
    assert result.bf_cbo.num_bloom_filters >= 1
    assert result.bf_cbo.estimated_cost <= result.bf_post.estimated_cost * 1.001
