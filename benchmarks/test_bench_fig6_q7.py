"""Benchmark E5: Figure 6 — TPC-H Q7 predicate transfer case study.

The paper's Figure 6 shows BF-CBO changing Q7's join order so that five Bloom
filters (instead of one) transfer the nation predicates through customer,
orders and lineitem, improving latency by 83.7%.  The benchmark executes Q7
under BF-Post and BF-CBO, prints both annotated plans, and asserts that BF-CBO
applies at least as many Bloom filters and does not lose in latency.
"""

from __future__ import annotations

from repro.experiments import run_q7_case_study


def test_figure6_q7_case_study(benchmark, bench_workload):
    result = benchmark.pedantic(
        lambda: run_q7_case_study(workload=bench_workload),
        rounds=1, iterations=1)

    print()
    print(result.to_text())

    benchmark.extra_info["bf_post_filters"] = result.bf_post_filters
    benchmark.extra_info["bf_cbo_filters"] = result.bf_cbo_filters
    benchmark.extra_info["latency_improvement_pct"] = result.latency_improvement
    benchmark.extra_info["plan_changed"] = result.plan_changed

    assert result.bf_cbo_filters >= result.bf_post_filters
    assert result.bf_cbo.simulated_latency <= \
        result.bf_post.simulated_latency * 1.02
