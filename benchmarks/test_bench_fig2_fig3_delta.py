"""Benchmark E8: Figures 2 and 3 — δ-dependent cardinality and join legality.

Figure 2: the estimated cardinality of a Bloom-filtered scan depends on the
build-side relation set δ — adding a filtering relation to δ can only lower
the estimate.  Figure 3: a Bloom filter sub-plan may only be joined with a
sub-plan that provides all of its δ relations on the build side, except when
the inner sub-plan is itself a Bloom filter sub-plan whose δ covers the
outstanding relations.  The benchmark measures the micro-experiment that
demonstrates both rules and asserts them.
"""

from __future__ import annotations

from repro.experiments import run_delta_semantics


def test_figure2_figure3_delta_semantics(benchmark):
    result = benchmark.pedantic(run_delta_semantics, rounds=3, iterations=1)

    print()
    print("|R0 ⋉̂ R1|        = %.0f rows" % result.rows_delta_r1)
    print("|R0 ⋉̂ (R1, R2)|  = %.0f rows" % result.rows_delta_r1_r2)
    print("Figure 3(b) illegal join rejected : %s" % result.illegal_join_rejected)
    print("Figure 3(c) exception join allowed: %s" % result.exception_join_allowed)

    benchmark.extra_info["rows_delta_r1"] = result.rows_delta_r1
    benchmark.extra_info["rows_delta_r1_r2"] = result.rows_delta_r1_r2

    assert result.delta_dependency_holds
    assert result.rows_delta_r1_r2 < result.rows_delta_r1
    assert result.illegal_join_rejected
    assert result.exception_join_allowed
