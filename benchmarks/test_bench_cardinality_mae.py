"""Benchmark E7: Section 4.2 — cardinality estimation accuracy.

The paper reports a mean absolute error of 5.3e6 for BF-CBO's intermediate
cardinality estimates versus 2.5e7 for BF-Post, a 78.8% improvement, because
BF-CBO revises the row estimates of Bloom-filtered scans.  The benchmark
executes every analysed query under both modes, compares estimated and
observed rows for every operator, and asserts that BF-CBO's pooled MAE is
lower than BF-Post's.
"""

from __future__ import annotations

from repro.experiments import run_cardinality_mae


def test_cardinality_mae(benchmark, bench_workload):
    result = benchmark.pedantic(
        lambda: run_cardinality_mae(workload=bench_workload),
        rounds=1, iterations=1)

    print()
    print(result.to_text())
    print("(paper: BF-Post MAE 2.5e7, BF-CBO MAE 5.3e6, 78.8%% improvement)")

    benchmark.extra_info["bf_post_mae"] = result.overall_bf_post_mae
    benchmark.extra_info["bf_cbo_mae"] = result.overall_bf_cbo_mae
    benchmark.extra_info["improvement_pct"] = result.improvement_percent

    assert result.overall_bf_cbo_mae < result.overall_bf_post_mae
    assert result.improvement_percent > 0
