"""Benchmark E6: the Section 3.1 naïve search-space blow-up.

The paper measured 28 ms / 375 ms / 56 s / >30 min of optimization time for
3 / 4 / 5 / 6-table joins when uncosted Bloom filter sub-plans are carried
through a single bottom-up pass, against which the two-phase approach stays
fast.  The benchmark reproduces the growth curve on chain joins of 3–5 tables
(6 hits the safety budget by design) and asserts that the number of maintained
sub-plans grows super-linearly while the two-phase optimizer's planning time
stays orders of magnitude lower for the largest case.
"""

from __future__ import annotations

from repro.experiments import run_naive_blowup


def test_naive_blowup_growth(benchmark):
    result = benchmark.pedantic(
        lambda: run_naive_blowup(table_counts=[3, 4, 5],
                                 naive_budget_seconds=30.0),
        rounds=1, iterations=1)

    print()
    print(result.to_text())

    for point in result.points:
        benchmark.extra_info["naive_%d_tables_s" % point.num_tables] = \
            point.naive_seconds
        benchmark.extra_info["two_phase_%d_tables_s" % point.num_tables] = \
            point.two_phase_seconds

    subplans = [p.naive_subplans for p in result.points]
    times = [p.naive_seconds for p in result.points]
    assert subplans[0] < subplans[1] < subplans[2]
    # Super-linear growth: each added table multiplies the maintained
    # sub-plans, and planning time follows.
    assert subplans[2] > subplans[0] * 10
    assert times[2] > times[0] * 5
    # The two-phase approach keeps orders of magnitude fewer sub-plans because
    # unresolved Bloom filter sub-plans never have to be carried uncosted.
    last = result.points[-1]
    assert last.naive_subplans > last.two_phase_subplans * 5
