"""Benchmark E9: planner latency overhead (Tables 2/3, right-hand columns),
plus the large-topology enumeration latency microbenchmark.

At the paper's SF100 statistics the planner is run (without execution) for all
analysed queries under BF-Post, BF-CBO and BF-CBO with Heuristic 7.  The paper
reports totals of 254.3 ms / 540.7 ms / 421.9 ms respectively: BF-CBO pays a
planning-time premium for its larger search space, and Heuristic 7 claws part
of it back.  The benchmark asserts the same ordering between BF-Post and
BF-CBO and reports all totals.

The second benchmark stresses the enumeration layer itself on synthetic 10+
relation chain / star / clique queries (TPC-H tops out at eight relations) —
the workload that motivated the bitmask DPccp rewrite (docs/enumeration.md).
"""

from __future__ import annotations

from repro.experiments import run_planner_latency
from repro.experiments.enumeration_latency import run_enumeration_latency


def test_planner_latency_overhead(benchmark, paper_stats_workload):
    result = benchmark.pedantic(
        lambda: run_planner_latency(workload=paper_stats_workload),
        rounds=1, iterations=1)

    print()
    print(result.to_text())
    print("(paper totals: BF-Post 254.3 ms, BF-CBO 540.7 ms, "
          "BF-CBO+H7 421.9 ms)")

    benchmark.extra_info["total_bf_post_ms"] = result.total_bf_post_ms
    benchmark.extra_info["total_bf_cbo_ms"] = result.total_bf_cbo_ms
    benchmark.extra_info["total_bf_cbo_h7_ms"] = result.total_bf_cbo_h7_ms

    # BF-CBO explores a strictly larger search space than BF-Post.
    assert result.total_bf_cbo_ms > result.total_bf_post_ms
    # Heuristic 7 must not make planning more expensive than plain BF-CBO by
    # more than measurement noise.
    assert result.total_bf_cbo_h7_ms <= result.total_bf_cbo_ms * 1.25


def test_enumeration_latency_large_topologies(benchmark):
    """DPccp enumeration on 10+-relation chain/star/clique queries.

    Before the bitmask rewrite the raw pair walk alone took ~57 ms (chain-12),
    ~1.2 s (star-12) and ~0.8 s (clique-10); the walk must now stay well under
    those numbers — the assertions leave generous headroom for slow CI
    machines while still catching a regression to subset scanning.
    """
    result = benchmark.pedantic(
        lambda: run_enumeration_latency(
            [("chain", 12), ("star", 12), ("clique", 10)],
            plan_topologies=("chain",)),
        rounds=1, iterations=1)

    print()
    print(result.to_text())

    for point in result.points:
        benchmark.extra_info["%s_enum_ms" % point.query] = point.enumeration_ms
        benchmark.extra_info["%s_plan_ms" % point.query] = point.planning_ms
    # Pair counts are a pure function of the topology — pin them so a walk
    # change that silently drops or duplicates pairs fails loudly.
    assert result.point("chain-12").join_pairs == 572
    assert result.point("star-12").join_pairs == 22528
    assert result.point("clique-10").join_pairs == 57002
    # Latency canaries: a regression to subset scanning emits the SAME pairs
    # (the count pins can't see it) but took ~54 ms / ~1213 ms on these two
    # queries, so the bounds must reject seed-speed while leaving ~5-8x
    # headroom over the DPccp walk (~4 ms / ~120 ms) for slow CI machines.
    # Cliques have no disconnected subsets to skip, hence no latency bound.
    assert result.point("chain-12").enumeration_ms < 30
    assert result.point("star-12").enumeration_ms < 600
