"""Benchmark E9: planner latency overhead (Tables 2/3, right-hand columns).

At the paper's SF100 statistics the planner is run (without execution) for all
analysed queries under BF-Post, BF-CBO and BF-CBO with Heuristic 7.  The paper
reports totals of 254.3 ms / 540.7 ms / 421.9 ms respectively: BF-CBO pays a
planning-time premium for its larger search space, and Heuristic 7 claws part
of it back.  The benchmark asserts the same ordering between BF-Post and
BF-CBO and reports all totals.
"""

from __future__ import annotations

from repro.experiments import run_planner_latency


def test_planner_latency_overhead(benchmark, paper_stats_workload):
    result = benchmark.pedantic(
        lambda: run_planner_latency(workload=paper_stats_workload),
        rounds=1, iterations=1)

    print()
    print(result.to_text())
    print("(paper totals: BF-Post 254.3 ms, BF-CBO 540.7 ms, "
          "BF-CBO+H7 421.9 ms)")

    benchmark.extra_info["total_bf_post_ms"] = result.total_bf_post_ms
    benchmark.extra_info["total_bf_cbo_ms"] = result.total_bf_cbo_ms
    benchmark.extra_info["total_bf_cbo_h7_ms"] = result.total_bf_cbo_h7_ms

    # BF-CBO explores a strictly larger search space than BF-Post.
    assert result.total_bf_cbo_ms > result.total_bf_post_ms
    # Heuristic 7 must not make planning more expensive than plain BF-CBO by
    # more than measurement noise.
    assert result.total_bf_cbo_h7_ms <= result.total_bf_cbo_ms * 1.25
