"""Benchmark E9: planner latency overhead (Tables 2/3, right-hand columns),
plus the large-topology enumeration latency microbenchmark.

At the paper's SF100 statistics the planner is run (without execution) for all
analysed queries under BF-Post, BF-CBO and BF-CBO with Heuristic 7.  The paper
reports totals of 254.3 ms / 540.7 ms / 421.9 ms respectively: BF-CBO pays a
planning-time premium for its larger search space, and Heuristic 7 claws part
of it back.  The benchmark asserts the same ordering between BF-Post and
BF-CBO and reports all totals.

The second benchmark stresses the enumeration layer itself on synthetic 10+
relation chain / star / clique queries (TPC-H tops out at eight relations) —
the workload that motivated the bitmask DPccp rewrite (docs/enumeration.md).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments import run_planner_latency
from repro.experiments.enumeration_latency import (
    TRAJECTORY_SETTINGS,
    run_adaptive_latency,
    run_adaptive_speedup,
    run_enumeration_latency,
)

#: Machine-readable planner-latency trajectory, tracked across PRs as a CI
#: artifact (written into the working directory, i.e. the repo root under
#: ``make smoke``).
TRAJECTORY_JSON = Path("BENCH_planner_latency.json")


def test_planner_latency_overhead(benchmark, paper_stats_workload):
    result = benchmark.pedantic(
        lambda: run_planner_latency(workload=paper_stats_workload),
        rounds=1, iterations=1)

    print()
    print(result.to_text())
    print("(paper totals: BF-Post 254.3 ms, BF-CBO 540.7 ms, "
          "BF-CBO+H7 421.9 ms)")

    benchmark.extra_info["total_bf_post_ms"] = result.total_bf_post_ms
    benchmark.extra_info["total_bf_cbo_ms"] = result.total_bf_cbo_ms
    benchmark.extra_info["total_bf_cbo_h7_ms"] = result.total_bf_cbo_h7_ms

    # BF-CBO explores a strictly larger search space than BF-Post.
    assert result.total_bf_cbo_ms > result.total_bf_post_ms
    # Heuristic 7 must not make planning more expensive than plain BF-CBO by
    # more than measurement noise.
    assert result.total_bf_cbo_h7_ms <= result.total_bf_cbo_ms * 1.25


def test_enumeration_latency_large_topologies(benchmark):
    """DPccp enumeration on 10+-relation chain/star/clique queries.

    Before the bitmask rewrite the raw pair walk alone took ~57 ms (chain-12),
    ~1.2 s (star-12) and ~0.8 s (clique-10); the walk must now stay well under
    those numbers — the assertions leave generous headroom for slow CI
    machines while still catching a regression to subset scanning.
    """
    result = benchmark.pedantic(
        lambda: run_enumeration_latency(
            [("chain", 12), ("star", 12), ("clique", 10)],
            plan_topologies=("chain",)),
        rounds=1, iterations=1)

    print()
    print(result.to_text())

    for point in result.points:
        benchmark.extra_info["%s_enum_ms" % point.query] = point.enumeration_ms
        benchmark.extra_info["%s_plan_ms" % point.query] = point.planning_ms
    # Pair counts are a pure function of the topology — pin them so a walk
    # change that silently drops or duplicates pairs fails loudly.
    assert result.point("chain-12").join_pairs == 572
    assert result.point("star-12").join_pairs == 22528
    assert result.point("clique-10").join_pairs == 57002
    # Latency canaries: a regression to subset scanning emits the SAME pairs
    # (the count pins can't see it) but took ~54 ms / ~1213 ms on these two
    # queries, so the bounds must reject seed-speed while leaving ~5-8x
    # headroom over the DPccp walk (~4 ms / ~120 ms) for slow CI machines.
    # Cliques have no disconnected subsets to skip, hence no latency bound.
    assert result.point("chain-12").enumeration_ms < 30
    assert result.point("star-12").enumeration_ms < 600


def test_adaptive_speedup_gate(benchmark):
    """Adaptive clique-20 planning must beat the exact DP by >= 10x.

    The exact baseline runs at clique-7 (~15 s on a dev box): exact clique DP
    latency is monotonically increasing in the relation count — clique-8
    already takes minutes, clique-20 would take geological time — so beating
    clique-7 by 10x is a certified *lower bound* on the speedup versus an
    exact clique-20 DP.  The adaptive point runs under the default settings,
    where 20 relations exceed ``fallback_relation_threshold`` and the
    GOO/IKKBZ greedy ordering plans the query in ~100 ms.
    """
    result = benchmark.pedantic(run_adaptive_speedup, rounds=1, iterations=1)

    print()
    print("clique-7 exact DP:      %8.1f ms" % result.exact.planning_ms)
    print("clique-20 adaptive:     %8.1f ms (fallback: %s)"
          % (result.adaptive.planning_ms, result.adaptive.fallback_reason))
    print("speedup (lower bound):  %8.0fx" % result.speedup)

    benchmark.extra_info["exact_clique7_ms"] = result.exact.planning_ms
    benchmark.extra_info["adaptive_clique20_ms"] = result.adaptive.planning_ms
    benchmark.extra_info["speedup_lower_bound"] = result.speedup

    assert result.adaptive.fallback_reason == "relations"
    assert result.speedup >= 10


def test_planner_latency_trajectory_json(benchmark):
    """Track chain/star/clique planning at n in {8, 12, 16, 20} across PRs.

    The grid runs under ``TRAJECTORY_SETTINGS`` (the adaptive defaults with a
    tighter 500-pair budget, so the minutes-long exact clique mid-points fall
    back and the grid stays benchmarkable) and is written to
    ``BENCH_planner_latency.json`` — uploaded as a CI artifact so the perf
    trajectory of both the exact DP points and the greedy fallback points is
    machine-readable PR over PR.
    """
    result = benchmark.pedantic(run_adaptive_latency, rounds=1, iterations=1)

    print()
    print(result.to_text())

    payload = {
        "benchmark": "planner_latency_trajectory",
        "settings": {
            "enumeration_budget": TRAJECTORY_SETTINGS.enumeration_budget,
            "fallback_relation_threshold":
                TRAJECTORY_SETTINGS.fallback_relation_threshold,
        },
        "points": [point.to_dict() for point in result.points],
    }
    TRAJECTORY_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    print("wrote %s" % TRAJECTORY_JSON.resolve())

    for point in result.points:
        benchmark.extra_info["%s_ms" % point.query] = point.planning_ms
    # Every 20-relation point must have engaged the relation-threshold
    # fallback; the small chain points must have stayed exact.
    assert result.point("clique-20").fallback_reason == "relations"
    assert result.point("star-20").fallback_reason == "relations"
    assert result.point("chain-20").fallback_reason == "relations"
    assert result.point("chain-8").fallback_reason == ""
    assert result.point("chain-12").fallback_reason == ""
    # The clique-16 walk trips the trajectory budget long before finishing.
    assert result.point("clique-16").fallback_reason == "budget"
    # Fallback points must stay interactive — generous bound for slow CI.
    for topology in ("chain", "star", "clique"):
        assert result.point("%s-20" % topology).planning_ms < 5_000
