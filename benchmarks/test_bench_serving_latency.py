"""Benchmark gates for the serving tier (``repro.serving``).

Three gates guard the serving subsystem (docs/serving.md):

* **Result-cache gate** — a hot query served from the shared result cache
  must be >= 10x faster than its cold execution: deterministic execution
  makes a result a pure function of the plan-cache key, so serving a repeat
  costs one LRU lookup.
* **Targeted-invalidation gate** — re-registering one table must evict
  exactly the result-cache entries that read it: dependents go (and
  re-execute against the new data), every other table's results stay hot.
* **Latency distribution** — sustained mixed multi-tenant traffic (hot
  repeats + cold uniques + one slow, low-quota tenant) through the async
  serving tier completes fully, and its p50/p95/p99 latencies plus the
  result-cache hit rate are recorded.

Results are written to ``BENCH_serving_latency.json`` (uploaded as a CI
artifact, same pattern as ``BENCH_executor_throughput.json``).
"""

from __future__ import annotations

import asyncio
import json
import time
from pathlib import Path

import numpy as np

from repro.api import Database
from repro.serving import AsyncDatabase, TenantQuota

#: Machine-readable serving-latency results (written into the working
#: directory, i.e. the repo root under ``make smoke``).
SERVING_JSON = Path("BENCH_serving_latency.json")

#: TPC-H queries the hot tenants repeat (dashboard-style traffic).
HOT_QUERY_CYCLE = [3, 10, 12]
HOT_REPEATS = 20
#: Cold unique queries per run (distinct constants => distinct fingerprints).
COLD_UNIQUES = 20
#: Requests of the slow, low-quota tenant (a heavy query each).
SLOW_REQUESTS = 4
SLOW_QUERY = 18

SERVING_WORKERS = 4
RESULT_CACHE_SIZE = 256
HOT_SPEEDUP_GATE = 10.0


def _write_payload(section: str, payload: dict) -> None:
    """Merge one benchmark section into the shared JSON artifact."""
    data = {}
    if SERVING_JSON.exists():
        data = json.loads(SERVING_JSON.read_text())
    data.setdefault("benchmark", "serving_latency")
    data[section] = payload
    SERVING_JSON.write_text(json.dumps(data, indent=2) + "\n")
    print("wrote %s [%s]" % (SERVING_JSON.resolve(), section))


def test_result_cache_hot_speedup_gate(benchmark, bench_workload):
    """Hot cached queries >= 10x faster than their cold executions.

    The plan cache is warmed first, so the cold side measures execution
    (not parsing/planning) and the gate isolates exactly what the result
    cache removes.
    """
    database = Database(bench_workload.catalog,
                        result_cache_size=RESULT_CACHE_SIZE)
    database.workload = bench_workload
    session = database.connect(history_limit=0)
    queries = [bench_workload.query(n) for n in HOT_QUERY_CYCLE]
    for query in queries:
        session.plan(query)  # warm the plan cache only

    def measure():
        started = time.perf_counter()
        cold = [session.execute(query) for query in queries]
        cold_s = time.perf_counter() - started
        started = time.perf_counter()
        hot = [session.execute(query) for query in queries]
        hot_s = time.perf_counter() - started
        return cold, hot, cold_s, hot_s

    cold, hot, cold_s, hot_s = benchmark.pedantic(measure, rounds=1,
                                                  iterations=1)
    speedup = cold_s / hot_s

    print()
    print("queries: %s (plan cache warm)" % HOT_QUERY_CYCLE)
    print("cold executions:     %7.1f ms" % (cold_s * 1e3))
    print("hot (result cache):  %7.2f ms" % (hot_s * 1e3))
    print("speedup:             %7.1fx (gate: >= %.0fx)"
          % (speedup, HOT_SPEEDUP_GATE))

    benchmark.extra_info["result_cache_speedup"] = speedup
    _write_payload("result_cache", {
        "queries": HOT_QUERY_CYCLE,
        "cold_ms": cold_s * 1e3,
        "hot_ms": hot_s * 1e3,
        "speedup": speedup,
        "gate": HOT_SPEEDUP_GATE,
    })

    # A hit is the same immutable execution, not a rerun.
    for reference, repeat in zip(cold, hot):
        assert not reference.from_result_cache
        assert repeat.from_result_cache
        assert repeat.execution is reference.execution
    stats = database.cache_stats()
    assert stats.result_hits == len(queries)
    assert speedup >= HOT_SPEEDUP_GATE


def test_result_cache_targeted_eviction_gate(benchmark):
    """Re-registering one table evicts exactly its dependents.

    Two ad-hoc tables, one cached result each; re-registering ``facts``
    must (a) evict exactly one entry, (b) leave the ``dims`` result hot,
    and (c) serve the re-executed ``facts`` query from the *new* data.
    """
    database = Database.from_tpch(0.002, statistics_only=True,
                                  result_cache_size=RESULT_CACHE_SIZE)
    database.register_table("facts", {
        "fk": np.arange(5000, dtype=np.int64) % 50,
        "measure": np.arange(5000, dtype=np.float64),
    })
    database.register_table("dims", {
        "dk": np.arange(50, dtype=np.int64),
        "bucket": np.arange(50, dtype=np.int64) % 5,
    }, primary_key=["dk"])
    session = database.connect(history_limit=0)
    q_facts = "select count(*) as n from facts"
    q_dims = "select count(*) as n from dims"

    def measure():
        session.execute(q_facts)
        session.execute(q_dims)
        before = database.cache_stats()
        database.register_table("facts", {
            "fk": np.arange(800, dtype=np.int64) % 50,
            "measure": np.arange(800, dtype=np.float64),
        })
        after = database.cache_stats()
        fresh = session.execute(q_facts)
        survivor = session.execute(q_dims)
        return before, after, fresh, survivor

    before, after, fresh, survivor = benchmark.pedantic(measure, rounds=1,
                                                        iterations=1)
    evicted = after.result_evictions - before.result_evictions

    print()
    print("entries before/after re-registration: %d -> %d"
          % (before.result_entries, after.result_entries))
    print("targeted evictions: %d (gate: exactly 1)" % evicted)

    _write_payload("targeted_eviction", {
        "entries_before": before.result_entries,
        "entries_after": after.result_entries,
        "evictions": evicted,
        "survivor_hit": bool(survivor.from_result_cache),
    })

    assert before.result_entries == 2
    assert evicted == 1, "re-registration must evict exactly the dependent"
    assert after.result_entries == 1
    assert not fresh.from_result_cache
    assert fresh.column("n")[0] == 800  # the new data, not the stale 5000
    assert survivor.from_result_cache  # unrelated table stayed hot


def test_serving_latency_percentiles(benchmark, bench_workload):
    """Sustained mixed multi-tenant traffic: percentiles + hit rate.

    Three tenant classes drive the async tier concurrently:

    * ``dash-0`` / ``dash-1`` — hot repeats of a small query cycle (the
      result-cache sweet spot);
    * ``adhoc`` — cold unique queries (distinct literals, so every request
      plans and executes);
    * ``slow`` — a heavy query on a ``max_concurrency=1``, low-weight
      quota, so it cannot crowd out the interactive tenants.

    The gate is behavioural (everything admitted completes; the hot
    repeats actually hit), the percentiles are the recorded artifact.
    """
    database = Database(bench_workload.catalog,
                        result_cache_size=RESULT_CACHE_SIZE)
    database.workload = bench_workload
    hot_queries = [bench_workload.query(n) for n in HOT_QUERY_CYCLE]
    cold_sql = ("select count(*) as n from lineitem "
                "where l_quantity <= %d and l_linenumber <= %d")
    slow_query = bench_workload.query(SLOW_QUERY)

    async def drive():
        serving = AsyncDatabase(
            database, workers=SERVING_WORKERS, max_queue_depth=512,
            quotas={"slow": TenantQuota(max_concurrency=1, weight=0.25)})
        try:
            requests = []
            for repeat in range(HOT_REPEATS):
                for index, query in enumerate(hot_queries):
                    tenant = "dash-%d" % (index % 2)
                    requests.append(serving.execute_async(
                        query, tenant=tenant, name="hot-%d" % repeat))
            for unique in range(COLD_UNIQUES):
                requests.append(serving.execute_async(
                    cold_sql % (10 + unique, 1 + unique % 7),
                    tenant="adhoc", name="cold-%d" % unique))
            for index in range(SLOW_REQUESTS):
                requests.append(serving.execute_async(
                    slow_query, tenant="slow", name="slow-%d" % index))
            results = await asyncio.gather(*requests)
            return results, serving.snapshot()
        finally:
            serving.close()

    def measure():
        started = time.perf_counter()
        results, snapshot = asyncio.run(drive())
        wall_s = time.perf_counter() - started
        return results, snapshot, wall_s

    results, snapshot, wall_s = benchmark.pedantic(measure, rounds=1,
                                                   iterations=1)
    total = len(results)
    hit_rate = snapshot.result_cache_hits / snapshot.completed

    print()
    print("traffic: %d requests (%d hot, %d cold, %d slow), %d workers"
          % (total, HOT_REPEATS * len(HOT_QUERY_CYCLE), COLD_UNIQUES,
             SLOW_REQUESTS, SERVING_WORKERS))
    print("wall clock:          %7.1f ms" % (wall_s * 1e3))
    latency = snapshot.latency
    print("latency p50/p95/p99: %.1f / %.1f / %.1f ms (max %.1f)"
          % (latency.p50_ms, latency.p95_ms, latency.p99_ms,
             latency.max_ms))
    print("result-cache hits:   %d/%d (%.0f%%)"
          % (snapshot.result_cache_hits, snapshot.completed,
             hit_rate * 100))

    benchmark.extra_info["p99_ms"] = latency.p99_ms
    benchmark.extra_info["hit_rate"] = hit_rate
    _write_payload("latency", {
        "requests": total,
        "workers": SERVING_WORKERS,
        "wall_ms": wall_s * 1e3,
        "p50_ms": latency.p50_ms,
        "p95_ms": latency.p95_ms,
        "p99_ms": latency.p99_ms,
        "max_ms": latency.max_ms,
        "hit_rate": hit_rate,
        "tenants": {name: snap.as_dict()
                    for name, snap in snapshot.tenants.items()},
    })

    assert snapshot.admitted == total
    assert snapshot.completed == total  # nothing shed, cancelled or failed
    assert snapshot.rejected == 0
    # Hot repeats dominate the mix; most of them must come from the cache.
    assert hit_rate >= 0.4
    for result in results:
        assert result.num_rows >= 0 and result.executed
