"""Smoke benchmark: the masked executor must not slow the all-valid path.

The validity-mask refactor keeps ``mask=None`` columns on the original
vectorised code paths, so a NULL-free workload (all of TPC-H) should pay
essentially nothing for NULL support.  The seed executor no longer exists to
compare against, so the gate has two halves:

* **structural** (the actual regression gate) — scanning each Q12 table must
  yield mask-free batches and executing Q12 must produce a mask-free result,
  proving the all-valid fast path is taken end to end;
* **timing sanity ceiling** — the ``mask=None`` run must not exceed the same
  query executed with explicit all-valid masks forced onto every column
  (which pays the mask bookkeeping: per-operator mask slicing plus the
  all-False short-circuit checks) by more than 10%.  The masked run does a
  strict superset of the fast-path work, so this bounds absolute fast-path
  bloat; it cannot by itself detect the fast path converging onto the masked
  path — that is what the structural half is for.

Wired into ``make check`` / CI next to the planner-latency smoke benchmark.
"""

from __future__ import annotations

import time

import numpy as np

from repro.api import Database
from repro.executor.batch import Batch
from repro.storage.catalog import Catalog
from repro.storage.schema import TableSchema
from repro.storage.column import ColumnDef
from repro.storage.table import Table

#: Measured executions per variant; the minimum is compared (robust against
#: one-off scheduler noise in CI).
ROUNDS = 5

#: Allowed fast-path overhead relative to the forced-mask run.
TOLERANCE = 1.10


def _nullable_clone(catalog: Catalog, names) -> Catalog:
    """A catalog whose listed tables carry explicit all-valid masks.

    An all-``False`` mask is normalised away at the storage layer, so the
    masks are injected straight into the column containers; the executor's
    batches then carry and slice them through every operator (the expensive
    kernels short-circuit on ``mask.any()`` — that check is part of the
    bookkeeping this variant measures).
    """
    clone = Catalog()
    for name in names:
        table = catalog.table(name)
        columns = [ColumnDef(c.name, c.dtype, nullable=True)
                   for c in table.schema.columns]
        schema = TableSchema(name=table.schema.name, columns=columns,
                             primary_key=table.schema.primary_key,
                             foreign_keys=list(table.schema.foreign_keys))
        masked = Table(schema, {c: table.column(c)
                                for c in table.column_names})
        for column_name in masked.column_names:
            data = masked.column_data(column_name)
            data.null_mask = np.zeros(masked.num_rows, dtype=bool)
        clone.register_table(masked,
                             statistics=catalog.statistics(name))
    return clone


def _min_execution_seconds(session, query) -> float:
    best = float("inf")
    for _ in range(ROUNDS):
        started = time.perf_counter()
        session.execute(query)
        best = min(best, time.perf_counter() - started)
    return best


def test_null_mask_overhead_on_q12(bench_workload):
    db = Database(bench_workload.catalog,
                  scale_factor=bench_workload.scale_factor)
    query = bench_workload.query(12)
    session = db.connect()

    # Structural gate: the fast path must hold at the source (scans yield
    # no masks) and at the sink (the result carries none).
    for relation in query.relations:
        scan = Batch.from_table(relation.alias,
                                bench_workload.catalog.table(relation.table_name))
        assert not scan.has_masks(), \
            "TPC-H table %r produced masks on all-valid data" % relation.table_name
    result = session.execute(query)
    assert result.execution is not None
    assert not result.execution.batch.has_masks(), \
        "TPC-H Q12 produced masks on an all-valid workload"

    masked_catalog = _nullable_clone(bench_workload.catalog,
                                     [rel.table_name for rel in query.relations])
    masked_db = Database(masked_catalog,
                         scale_factor=bench_workload.scale_factor)
    masked_session = masked_db.connect()
    masked_result = masked_session.execute(query)
    assert masked_result.num_rows == result.num_rows
    for name in result.columns:
        assert np.array_equal(masked_result.column(name),
                              result.column(name)), \
            "masked execution changed column %r" % name

    fast = _min_execution_seconds(session, query)
    masked = _min_execution_seconds(masked_session, query)
    assert fast <= masked * TOLERANCE, (
        "mask=None fast path took %.4fs, exceeding the forced-mask run "
        "%.4fs by more than %d%% — the all-valid path is doing work the "
        "masked path does not"
        % (fast, masked, round((TOLERANCE - 1) * 100)))
