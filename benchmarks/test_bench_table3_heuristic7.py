"""Benchmark E2: Table 3 — the TPC-H suite with Heuristic 7 enabled.

Heuristic 7 caps the number of Bloom filter sub-plans per relation during
bottom-up optimization.  The paper's Table 3 shows that it lowers total
planning time (421.9 ms vs 540.7 ms) at a small cost in plan quality (31.4%
vs 32.8% improvement over BF-Post).  The benchmark reproduces both effects:
planning does not get slower, and overall latency stays in the same range as
the unrestricted BF-CBO run.
"""

from __future__ import annotations

from repro.experiments import run_tpch_suite


def test_table3_heuristic7_suite(benchmark, bench_workload):
    result = benchmark.pedantic(
        lambda: run_tpch_suite(workload=bench_workload, heuristic7=True),
        rounds=1, iterations=1)

    print()
    print(result.to_text())
    print("BF-CBO(+H7) improvement over BF-Post: %.1f%% (paper: 31.4%%)"
          % result.overall_improvement_over_post)
    print("Total planner latency with H7: %.1f ms"
          % result.total_bf_cbo_planner_ms)

    benchmark.extra_info["improvement_over_post_pct"] = \
        result.overall_improvement_over_post
    benchmark.extra_info["planner_ms_bf_cbo_h7"] = result.total_bf_cbo_planner_ms

    assert result.heuristic7
    assert result.overall_bf_post_reduction > 0
    # Heuristic 7 trades a little plan quality for planning time; it must not
    # destroy the overall benefit of BF-CBO.
    assert result.total_bf_cbo <= result.total_no_bf
