# Developer entry points.  `make check` is the gate CI runs: the tier-1 unit
# suite, a planner-latency smoke benchmark that fails fast if the join
# enumeration regresses to subset scanning (see docs/enumeration.md), a
# null-overhead smoke benchmark that fails if the mask=None fast path stops
# being free on NULL-free workloads (see docs/nulls.md), an executor
# throughput benchmark gating the factorized join kernel and execute_many
# batching at >= 2x (see docs/executor.md), a serving-latency benchmark
# gating the shared result cache (>= 10x hot speedup, targeted
# invalidation — see docs/serving.md), an examples smoke run that
# drives the session API (docs/api.md) end to end at tiny scale, plus the
# static-analysis gate: the engine lint suite, strict typing, and the
# plan-contract verifier over the golden-plan corpus (see docs/analysis.md),
# plus the chaos gate: the fault-injection suite run once per executor
# backend (see docs/robustness.md), and the memory gate: the governance
# and chaos suites re-run under a constrained process-wide memory pool so
# every operator's spill path is exercised for real (see docs/memory.md).

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: check test smoke examples bench golden lint typecheck verify-plans \
	chaos chaos-mem

check: lint typecheck verify-plans test chaos chaos-mem smoke examples

test:
	$(PYTHON) -m pytest tests -x -q

smoke:
	$(PYTHON) -m pytest benchmarks/test_bench_planner_latency.py \
		benchmarks/test_bench_null_overhead.py \
		benchmarks/test_bench_executor_throughput.py \
		benchmarks/test_bench_serving_latency.py -x -q

examples:
	$(PYTHON) examples/quickstart.py --scale 0.01
	$(PYTHON) examples/heuristic_ablation.py --scale 0.005 --queries 3,12,19
	$(PYTHON) examples/execute_many_serving.py --scale 0.005
	$(PYTHON) examples/async_serving.py --scale 0.005

# Engine-invariant lint (stdlib-only, see docs/analysis.md for the rules).
lint:
	$(PYTHON) -m repro.analysis lint

# Strict mypy over core/executor/api/analysis.  mypy is not vendored into the
# runtime image, so the target degrades to a notice when it is absent; CI
# installs it and runs the real thing.
typecheck:
	@$(PYTHON) -c "import mypy" 2>/dev/null \
		&& $(PYTHON) -m mypy --config-file mypy.ini src/repro \
		|| echo "mypy not installed; skipping typecheck (CI runs it)"

# Plan-contract verifier over every TPC-H golden plan configuration.
verify-plans:
	$(PYTHON) -m repro.analysis verify --scale-factor 100

# Chaos gate: the fault-injection suite once per executor backend
# (docs/robustness.md).  Override the backends to isolate one, e.g.
# `make chaos CHAOS_BACKENDS=process`.
CHAOS_BACKENDS ?= thread process
chaos:
	@for backend in $(CHAOS_BACKENDS); do \
		echo "chaos: executor_backend=$$backend"; \
		REPRO_CHAOS_BACKEND=$$backend \
			$(PYTHON) -m pytest tests/test_faults.py -x -q || exit 1; \
	done

# Memory gate: the governance suite plus the chaos matrix under a
# process-wide governor pool far below the suites' unlimited working set
# (docs/memory.md).  Queries must complete bit-identically via spill —
# zero OOM — with every denial and spilled byte counted.
CHAOS_MEM_POOL ?= 67108864
chaos-mem:
	REPRO_MEMORY_POOL_BYTES=$(CHAOS_MEM_POOL) \
		$(PYTHON) -m pytest tests/test_memory_governance.py \
		tests/test_faults.py -x -q

bench:
	$(PYTHON) -m pytest benchmarks -x -q

# Regenerate the golden TPC-H plan file (review the diff before committing).
golden:
	$(PYTHON) scripts/dump_plan_golden.py > tests/golden/tpch_plans.txt
