# Developer entry points.  `make check` is the gate CI runs: the tier-1 unit
# suite, a planner-latency smoke benchmark that fails fast if the join
# enumeration regresses to subset scanning (see docs/enumeration.md), a
# null-overhead smoke benchmark that fails if the mask=None fast path stops
# being free on NULL-free workloads (see docs/nulls.md), an executor
# throughput benchmark gating the factorized join kernel and execute_many
# batching at >= 2x (see docs/executor.md), and an examples smoke run that
# drives the session API (docs/api.md) end to end at tiny scale.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: check test smoke examples bench golden

check: test smoke examples

test:
	$(PYTHON) -m pytest tests -x -q

smoke:
	$(PYTHON) -m pytest benchmarks/test_bench_planner_latency.py \
		benchmarks/test_bench_null_overhead.py \
		benchmarks/test_bench_executor_throughput.py -x -q

examples:
	$(PYTHON) examples/quickstart.py --scale 0.01
	$(PYTHON) examples/heuristic_ablation.py --scale 0.005 --queries 3,12,19
	$(PYTHON) examples/execute_many_serving.py --scale 0.005

bench:
	$(PYTHON) -m pytest benchmarks -x -q

# Regenerate the golden TPC-H plan file (review the diff before committing).
golden:
	$(PYTHON) scripts/dump_plan_golden.py > tests/golden/tpch_plans.txt
