# Developer entry points.  `make check` is the gate CI runs: the tier-1 unit
# suite plus a planner-latency smoke benchmark that fails fast if the join
# enumeration regresses to subset scanning (see docs/enumeration.md).

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: check test smoke bench golden

check: test smoke

test:
	$(PYTHON) -m pytest tests -x -q

smoke:
	$(PYTHON) -m pytest benchmarks/test_bench_planner_latency.py -x -q

bench:
	$(PYTHON) -m pytest benchmarks -x -q

# Regenerate the golden TPC-H plan file (review the diff before committing).
golden:
	$(PYTHON) scripts/dump_plan_golden.py > tests/golden/tpch_plans.txt
